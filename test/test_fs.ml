(* File system unit tests: creation, truncation, read/write, sizes,
   persistence, generations, remote attribute propagation. *)

let with_sys ?(ncells = 2) f =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = ncells; mem_pages_per_node = 768 }
  in
  let sys = Hive.System.boot ~mcfg ~ncells ~wax:false eng in
  f eng sys

let run_to_completion sys p =
  let ok =
    Hive.System.run_until_processes_done sys ~deadline:120_000_000_000L [ p ]
  in
  Alcotest.(check bool) "process finished" true ok;
  Alcotest.(check (option int)) "clean exit" (Some 0) p.Hive.Types.exit_code

let in_proc sys ~on ~name body =
  Hive.Process.spawn sys sys.Hive.Types.cells.(on) ~name body

let test_create_read_roundtrip () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p
                ~content:(Bytes.of_string "the quick brown fox")
                "/tmp/a.txt"
            in
            let back = Hive.Syscall.pread sys p ~fd ~pos:4 ~len:5 in
            assert (Bytes.to_string back = "quick");
            Hive.Syscall.close sys p ~fd)
      in
      run_to_completion sys p)

let test_write_updates_size () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            let fd = Hive.Syscall.creat sys p "/tmp/grow.txt" in
            ignore (Hive.Syscall.write sys p ~fd (Bytes.make 10000 'a'));
            assert (Hive.Syscall.fsize sys p ~fd = 10000);
            ignore (Hive.Syscall.write sys p ~fd (Bytes.make 5 'b'));
            assert (Hive.Syscall.fsize sys p ~fd = 10005))
      in
      run_to_completion sys p)

let test_remote_write_updates_home_size () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:1 ~name:"t" (fun sys p ->
            let fd = Hive.Syscall.creat sys p "/tmp/remote-grow.txt" in
            ignore (Hive.Syscall.write sys p ~fd (Bytes.make 9000 'z'));
            Hive.Syscall.close sys p ~fd)
      in
      run_to_completion sys p;
      (* The data home (cell 0) must know the new size. *)
      match Hive.Fs.find_local sys.Hive.Types.cells.(0) "/tmp/remote-grow.txt" with
      | Some f -> Alcotest.(check int) "home size" 9000 f.Hive.Types.size
      | None -> Alcotest.fail "file missing at home")

let test_truncate_invalidates_cache () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.of_string "version-one")
                "/tmp/trunc.txt"
            in
            (* Warm the page cache with the old content. *)
            ignore (Hive.Syscall.pread sys p ~fd ~pos:0 ~len:11);
            Hive.Syscall.close sys p ~fd;
            (* Re-create with new content; cached pages must not leak. *)
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.of_string "version-TWO")
                "/tmp/trunc.txt"
            in
            let back = Hive.Syscall.pread sys p ~fd ~pos:0 ~len:11 in
            assert (Bytes.to_string back = "version-TWO"))
      in
      run_to_completion sys p)

let test_sync_persists_to_disk () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            let fd = Hive.Syscall.creat sys p "/tmp/sync.txt" in
            ignore (Hive.Syscall.write sys p ~fd (Bytes.of_string "durable"));
            Hive.Syscall.sync sys p)
      in
      run_to_completion sys p;
      match Workloads.Workload.stable_content sys "/tmp/sync.txt" with
      | Some b -> Alcotest.(check string) "on disk" "durable" (Bytes.to_string b)
      | None -> Alcotest.fail "no stable content")

let test_unsynced_data_not_on_disk () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            let fd = Hive.Syscall.creat sys p "/tmp/dirty.txt" in
            ignore (Hive.Syscall.write sys p ~fd (Bytes.of_string "volatile")))
      in
      run_to_completion sys p;
      match Workloads.Workload.stable_content sys "/tmp/dirty.txt" with
      | Some b ->
        Alcotest.(check bool) "write-behind: not yet stable" true
          (Bytes.length b = 0 || Bytes.to_string b <> "volatile")
      | None -> ())

let test_open_missing_enoent () =
  with_sys (fun _eng sys ->
      let got = ref "" in
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            try ignore (Hive.Syscall.openf sys p "/tmp/nope")
            with Hive.Types.Syscall_error e ->
              got := Hive.Types.errno_to_string e)
      in
      run_to_completion sys p;
      Alcotest.(check string) "errno" "ENOENT" !got)

let test_remote_open_missing_enoent () =
  with_sys (fun _eng sys ->
      let got = ref "" in
      let p =
        in_proc sys ~on:1 ~name:"t" (fun sys p ->
            try ignore (Hive.Syscall.openf sys p "/tmp/nope-remote")
            with Hive.Types.Syscall_error e ->
              got := Hive.Types.errno_to_string e)
      in
      run_to_completion sys p;
      Alcotest.(check string) "errno" "ENOENT" !got)

let test_unlink () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            let fd = Hive.Syscall.creat sys p "/tmp/gone.txt" in
            Hive.Syscall.close sys p ~fd;
            Hive.Syscall.unlink sys p "/tmp/gone.txt";
            match Hive.Syscall.openf sys p "/tmp/gone.txt" with
            | _ -> failwith "open after unlink should fail"
            | exception Hive.Types.Syscall_error Hive.Types.ENOENT -> ())
      in
      run_to_completion sys p)

let test_remote_unlink () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:1 ~name:"t" (fun sys p ->
            let fd = Hive.Syscall.creat sys p "/tmp/gone-remote.txt" in
            Hive.Syscall.close sys p ~fd;
            Hive.Syscall.unlink sys p "/tmp/gone-remote.txt")
      in
      run_to_completion sys p;
      Alcotest.(check bool) "removed at home" true
        (Hive.Fs.find_local sys.Hive.Types.cells.(0) "/tmp/gone-remote.txt"
        = None))

let test_generation_bump_gives_eio_locally () =
  with_sys (fun _eng sys ->
      let got_eio = ref false in
      let p =
        in_proc sys ~on:0 ~name:"t" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.of_string "gen0")
                "/tmp/gen.txt"
            in
            (* Simulate the FS noting a discarded dirty page. *)
            (match Hive.Fs.find_local sys.Hive.Types.cells.(0) "/tmp/gen.txt" with
            | Some f ->
              Hive.Fs.note_discard sys sys.Hive.Types.cells.(0) f ~page:0
                ~dirty:true
            | None -> failwith "missing");
            (try ignore (Hive.Syscall.pread sys p ~fd ~pos:0 ~len:4)
             with Hive.Types.Syscall_error Hive.Types.EIO -> got_eio := true);
            (* A fresh descriptor opened after the bump works. *)
            let fd2 = Hive.Syscall.openf sys p "/tmp/gen.txt" in
            ignore (Hive.Syscall.pread sys p ~fd:fd2 ~pos:0 ~len:4))
      in
      run_to_completion sys p;
      Alcotest.(check bool) "EIO on stale descriptor" true !got_eio)

(* The full preemptive-discard path, not a simulated note_discard: cell 1
   holds a dirty write grant on a cell-0 file when its node fail-stops.
   Recovery discards the dirty page and bumps the generation, so the
   pre-failure descriptor returns EIO while a fresh open sees the last
   synced data under the new generation. *)
let test_preemptive_discard_reopen_after_failure () =
  with_sys (fun _eng sys ->
      let creator =
        in_proc sys ~on:0 ~name:"creator" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p
                ~content:(Bytes.of_string "stable-data")
                "/tmp/disc.txt"
            in
            Hive.Syscall.close sys p ~fd;
            Hive.Syscall.sync sys p)
      in
      run_to_completion sys creator;
      (* Dirty remote write, held open across the failure. *)
      let _writer =
        in_proc sys ~on:1 ~name:"dirty-writer" (fun sys q ->
            let fd = Hive.Syscall.openf sys q ~writable:true "/tmp/disc.txt" in
            ignore
              (Hive.Syscall.pwrite sys q ~fd ~pos:0 (Bytes.of_string "DIRTY"));
            (* Hold the import until the node dies under us. *)
            Hive.Syscall.compute sys q 60_000_000_000L)
      in
      ignore
        (Sim.Engine.spawn sys.Hive.Types.eng ~name:"injector" (fun () ->
             Sim.Engine.delay 300_000_000L;
             Hive.System.inject_node_failure sys 1));
      let stale_eio = ref false in
      let gen_old = ref (-1) and gen_new = ref (-1) in
      let reopened = ref Bytes.empty in
      let reader =
        in_proc sys ~on:0 ~name:"reader" (fun sys p ->
            let fd = Hive.Syscall.openf sys p "/tmp/disc.txt" in
            gen_old := (Hive.Syscall.fd_of p fd).Hive.Types.opened_gen;
            (* Wait out the failure, recovery and reintegration. *)
            Hive.Syscall.compute sys p 3_000_000_000L;
            (try ignore (Hive.Syscall.pread sys p ~fd ~pos:0 ~len:6)
             with Hive.Types.Syscall_error Hive.Types.EIO ->
               stale_eio := true);
            let fd2 = Hive.Syscall.openf sys p "/tmp/disc.txt" in
            gen_new := (Hive.Syscall.fd_of p fd2).Hive.Types.opened_gen;
            reopened := Hive.Syscall.pread sys p ~fd:fd2 ~pos:0 ~len:11)
      in
      let ok =
        Hive.System.run_until_processes_done sys ~deadline:120_000_000_000L
          [ reader ]
      in
      Alcotest.(check bool) "reader finished" true ok;
      Alcotest.(check bool) "pre-failure fd got EIO" true !stale_eio;
      Alcotest.(check bool) "generation bumped" true (!gen_new > !gen_old);
      Alcotest.(check string) "reopen sees last synced data" "stable-data"
        (Bytes.to_string !reopened))

let test_close_releases_imports () =
  with_sys (fun _eng sys ->
      let p =
        in_proc sys ~on:1 ~name:"t" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.make 8192 'q')
                "/tmp/imports.txt"
            in
            ignore (Hive.Syscall.pread sys p ~fd ~pos:0 ~len:8192);
            let c1 = sys.Hive.Types.cells.(1) in
            let imported_before =
              Hashtbl.fold
                (fun _ (pf : Hive.Types.pfdat) n ->
                  if pf.Hive.Types.imported_from <> None then n + 1 else n)
                c1.Hive.Types.page_hash 0
            in
            assert (imported_before > 0);
            Hive.Syscall.close sys p ~fd;
            (* Close no longer drops read-only bindings on the floor: they
               park in the import cache, still bound but marked cached. *)
            Hashtbl.iter
              (fun _ (pf : Hive.Types.pfdat) ->
                if pf.Hive.Types.imported_from <> None then begin
                  assert pf.Hive.Types.cached;
                  assert (List.memq pf c1.Hive.Types.import_cache)
                end)
              c1.Hive.Types.page_hash;
            assert (List.length c1.Hive.Types.import_cache = imported_before);
            (* Re-reading after close+reopen is served from the parked
               bindings: cache hits, no new locate RPCs. *)
            let locates_before =
              Sim.Stats.value c1.Hive.Types.counters "fs.remote_locates"
            in
            let fd = Hive.Syscall.openf sys p "/tmp/imports.txt" in
            ignore (Hive.Syscall.pread sys p ~fd ~pos:0 ~len:8192);
            Hive.Syscall.close sys p ~fd;
            assert (
              Sim.Stats.value c1.Hive.Types.counters "fs.remote_locates"
              = locates_before);
            assert (
              Sim.Stats.value c1.Hive.Types.counters "share.cache_hits"
              = imported_before))
      in
      run_to_completion sys p)

let test_export_pins_page () =
  with_sys (fun _eng sys ->
      (* An exported page must not be reclaimed by the data home. *)
      let p =
        in_proc sys ~on:1 ~name:"t" (fun sys p ->
            let fd =
              Hive.Syscall.creat sys p ~content:(Bytes.make 4096 'p')
                "/tmp/pinned.txt"
            in
            ignore (Hive.Syscall.pread sys p ~fd ~pos:0 ~len:4096);
            let c0 = sys.Hive.Types.cells.(0) in
            let reclaimed = Hive.Page_alloc.reclaim sys c0 ~want:10000 in
            ignore reclaimed;
            (* The page must still be found in the home's hash. *)
            match Hive.Fs.find_local c0 "/tmp/pinned.txt" with
            | Some f ->
              let fid = f.Hive.Types.fid in
              let lid = { Hive.Types.tag = Hive.Types.File_obj fid; page = 0 } in
              assert (Hive.Pfdat.lookup c0 lid <> None)
            | None -> failwith "missing")
      in
      run_to_completion sys p)

let qcheck_fs_random_io =
  QCheck.Test.make ~name:"fs: random pwrite/pread matches a Bytes model"
    ~count:30
    QCheck.(
      list_of_size Gen.(1 -- 15)
        (pair (int_bound 20000) (string_of_size Gen.(1 -- 600))))
    (fun ops ->
      let eng = Sim.Engine.create () in
      let mcfg =
        { Flash.Config.small with Flash.Config.nodes = 2; mem_pages_per_node = 768 }
      in
      let sys = Hive.System.boot ~mcfg ~ncells:2 ~wax:false eng in
      let model = Bytes.make 32768 '\000' in
      let model_size = ref 0 in
      let ok = ref true in
      let p =
        in_proc sys ~on:1 ~name:"q" (fun sys p ->
            let fd = Hive.Syscall.creat sys p "/tmp/q.dat" in
            List.iter
              (fun (pos, data) ->
                let data = Bytes.of_string data in
                ignore (Hive.Syscall.pwrite sys p ~fd ~pos data);
                Bytes.blit data 0 model pos (Bytes.length data);
                model_size := max !model_size (pos + Bytes.length data))
              ops;
            (* Read the whole file back and compare. *)
            let back = Hive.Syscall.pread sys p ~fd ~pos:0 ~len:!model_size in
            if not (Bytes.equal back (Bytes.sub model 0 !model_size)) then
              ok := false)
      in
      ignore
        (Hive.System.run_until_processes_done sys ~deadline:300_000_000_000L
           [ p ]);
      !ok && p.Hive.Types.exit_code = Some 0)

let suite =
  [
    Alcotest.test_case "create + pread roundtrip" `Quick
      test_create_read_roundtrip;
    Alcotest.test_case "write extends size" `Quick test_write_updates_size;
    Alcotest.test_case "remote write propagates size to home" `Quick
      test_remote_write_updates_home_size;
    Alcotest.test_case "truncate invalidates cached pages" `Quick
      test_truncate_invalidates_cache;
    Alcotest.test_case "sync persists to disk" `Quick test_sync_persists_to_disk;
    Alcotest.test_case "write-behind: unsynced data not stable" `Quick
      test_unsynced_data_not_on_disk;
    Alcotest.test_case "open missing -> ENOENT" `Quick test_open_missing_enoent;
    Alcotest.test_case "remote open missing -> ENOENT" `Quick
      test_remote_open_missing_enoent;
    Alcotest.test_case "unlink" `Quick test_unlink;
    Alcotest.test_case "remote unlink" `Quick test_remote_unlink;
    Alcotest.test_case "generation bump -> EIO on old fd only" `Quick
      test_generation_bump_gives_eio_locally;
    Alcotest.test_case "preemptive discard: reopen fresh, old fd EIO" `Quick
      test_preemptive_discard_reopen_after_failure;
    Alcotest.test_case "close releases import bindings" `Quick
      test_close_releases_imports;
    Alcotest.test_case "exported pages are pinned against reclaim" `Quick
      test_export_pins_page;
    QCheck_alcotest.to_alcotest qcheck_fs_random_io;
  ]
