lib/hive/pfdat.mli: Types
