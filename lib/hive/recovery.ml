(* Recovery after a confirmed cell failure (Section 4.3).

   Given consensus on the live set, each surviving cell runs recovery to
   clean up dangling references and determine which processes must be
   killed. A double global barrier synchronizes the preemptive discard:

   - before barrier 1, each cell flushes its TLBs and removes remote
     mappings (faults arriving later are held up on the client side);
   - after barrier 1, no valid remote accesses are pending, so each cell
     revokes firewall permissions it granted to the failed cells, discards
     every page they could have written (notifying the file system about
     lost dirty pages), and cleans its VM structures;
   - after barrier 2, cells resume normal operation.

   At the end of a round a recovery master is elected from the new live
   set; it runs hardware diagnostics on the failed nodes and (if they
   pass) can reboot and reintegrate the failed cells. *)

type Types.payload +=
  | P_recovery_start of { dead : Types.cell_id list }

let start_op = Rpc.Op.declare "recovery.start"

let diagnostics_ns = 18_000_000L

(* The per-cell recovery algorithm, run in its own kernel thread. *)
let recovery_sequence (sys : Types.system) (c : Types.cell) ~dead =
  let p = sys.Types.params in
  let eng = sys.Types.eng in
  sys.Types.recovery_events <-
    (c.Types.cell_id, Sim.Engine.now eng) :: sys.Types.recovery_events;
  c.Types.in_recovery <- true;
  Gate.close sys c;
  Types.bump c "recovery.rounds";
  c.Types.live_set <- List.filter (fun id -> not (List.mem id dead)) c.Types.live_set;
  (* The recovery master (lowest live cell id) stamps the global recovery
     timeline; barrier phases are global sync points, so one cell's view
     of them is the system's. *)
  let min_live = List.fold_left min max_int c.Types.live_set in
  let is_master = c.Types.cell_id = min_live in
  let note phase =
    if is_master then Types.note_phase sys ~cell:c.Types.cell_id phase
  in
  (* Phase 1: TLB flush + removal of remote mappings and import bindings. *)
  Vm.flush_remote_bindings sys c;
  Sim.Engine.delay p.Params.recovery_phase_ns;
  (match sys.Types.recovery_barrier1 with
  | Some b -> Sim.Barrier.await eng b
  | None -> ());
  note "recovery.barrier1";
  (* Phase 2: nothing remote is pending now; revoke grants and discard
     everything the failed cells could have written. (The ablation knob
     models a system without preemptive discard: corrupt pages stay.) *)
  let discarded =
    if p.Params.enable_preemptive_discard then
      Vm.preemptive_discard sys c ~dead
    else 0
  in
  note "recovery.discard";
  Sim.Trace.info eng "cell %d recovery: discarded %d pages" c.Types.cell_id
    discarded;
  (* Kill processes that depended on resources of the failed cells. *)
  List.iter
    (fun (proc : Types.process) ->
      if
        proc.Types.pstate <> Types.Proc_zombie
        && List.exists (fun d -> List.mem d dead) proc.Types.uses_cells
      then begin
        proc.Types.killed_by_failure <- true;
        Types.bump c "recovery.procs_killed";
        match proc.Types.thread with
        | Some t -> Sim.Engine.kill eng t
        | None -> ()
      end)
    c.Types.processes;
  Sim.Engine.delay p.Params.recovery_phase_ns;
  (match sys.Types.recovery_barrier2 with
  | Some b -> Sim.Barrier.await eng b
  | None -> ());
  note "recovery.barrier2";
  (* Back to normal operation. *)
  c.Types.suspected <- [];
  c.Types.in_recovery <- false;
  Gate.open_ sys c;
  note "recovery.resume";
  (* The recovery master finishes the round. *)
  if is_master then begin
    (* Diagnose the failed nodes; reintegration would go here. *)
    Sim.Engine.delay diagnostics_ns;
    sys.Types.recovery_complete_at <- Sim.Engine.now eng;
    sys.Types.recovery_in_progress <- false;
    Types.sys_bump sys "recovery.completed";
    match sys.Types.wax_restart with
    | Some f -> f sys
    | None -> ()
  end

let start_recovery_thread (sys : Types.system) (c : Types.cell) ~dead =
  let thr =
    Sim.Engine.spawn sys.Types.eng
      ~name:(Printf.sprintf "cell%d.recovery" c.Types.cell_id)
      (fun () -> recovery_sequence sys c ~dead)
  in
  c.Types.kernel_threads <- thr :: c.Types.kernel_threads

(* Kick off a recovery round for the confirmed dead set. Called on the
   accusing cell after agreement (or directly by the failure oracle). *)
let initiate (sys : Types.system) ~dead =
  sys.Types.recovery_in_progress <- true;
  Types.sys_bump sys "recovery.initiated";
  (* Force any "dead" cell that is in fact still running (erratic kernel)
     to stop: the confirmed consensus supersedes its own opinion. *)
  List.iter
    (fun d ->
      let dc = sys.Types.cells.(d) in
      if dc.Types.cstatus <> Types.Cell_down then
        Panic.panic sys dc "declared failed by distributed agreement")
    dead;
  let live =
    Array.to_list sys.Types.cells
    |> List.filter_map (fun (c : Types.cell) ->
           if Types.cell_alive c && not (List.mem c.Types.cell_id dead) then
             Some c
           else None)
  in
  let parties = List.length live in
  sys.Types.recovery_barrier1 <- Some (Sim.Barrier.create (max 1 parties));
  sys.Types.recovery_barrier2 <- Some (Sim.Barrier.create (max 1 parties));
  List.iter (fun c -> start_recovery_thread sys c ~dead) live

let registered = ref false

let register_handlers () =
  if not !registered then begin
    registered := true;
    Rpc.register start_op (fun sys cell ~src:_ arg ->
        match arg with
        | P_recovery_start { dead } ->
          start_recovery_thread sys cell ~dead;
          Types.Immediate (Ok Types.P_unit)
        | _ -> Types.Immediate (Error Types.EFAULT))
  end
