(* RPC subsystem tests: dispatch, queued service, error paths, costs. *)

(* Op descriptors are declared once per process (module initialization). *)
let echo_op = Hive.Rpc.Op.declare "test.echo"

let queued_echo_op = Hive.Rpc.Op.declare "test.queued_echo"

let fail_op = Hive.Rpc.Op.declare "test.fail"

let raise_op = Hive.Rpc.Op.declare "test.raise"

let slow_op = Hive.Rpc.Op.declare "test.slow"

let nonexistent_op = Hive.Rpc.Op.declare "test.nonexistent"

let slow99_op = Hive.Rpc.Op.declare "test.slow99"

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Hive.Rpc.register echo_op (fun _sys _cell ~src:_ arg ->
        Hive.Types.Immediate (Ok arg));
    Hive.Rpc.register queued_echo_op (fun _sys _cell ~src:_ arg ->
        Hive.Types.Queued (fun () -> Ok arg));
    Hive.Rpc.register fail_op (fun _sys _cell ~src:_ _arg ->
        Hive.Types.Immediate (Error Hive.Types.EAGAIN));
    Hive.Rpc.register raise_op (fun _sys _cell ~src:_ _arg ->
        raise (Hive.Types.Syscall_error Hive.Types.EFAULT));
    Hive.Rpc.register slow_op (fun sys _cell ~src:_ _arg ->
        Hive.Types.Queued
          (fun () ->
            ignore sys;
            Sim.Engine.delay 50_000_000L;
            Ok Hive.Types.P_unit));
    Hive.Rpc.register slow99_op (fun _sys _cell ~src:_ _arg ->
        Hive.Types.Queued
          (fun () ->
            Sim.Engine.delay 1_200_000_000L;
            Ok (Hive.Types.P_int 99)))
  end

let with_sys f =
  register ();
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = 2; mem_pages_per_node = 256 }
  in
  let sys = Hive.System.boot ~mcfg ~ncells:2 ~wax:false eng in
  f eng sys

(* Returns (outcome, simulated call duration). *)
let call_from_thread eng sys ~op ?timeout_ns ?arg_bytes arg =
  let out = ref (Error Hive.Types.EFAULT) in
  let dur = ref 0L in
  ignore
    (Sim.Engine.spawn eng ~name:"caller" (fun () ->
         let t0 = Sim.Engine.time () in
         out :=
           Hive.Rpc.call sys ~from:sys.Hive.Types.cells.(0) ~target:1 ~op
             ?timeout_ns ?arg_bytes arg;
         dur := Int64.sub (Sim.Engine.time ()) t0));
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 30_000_000_000L) eng;
  (!out, !dur)

let test_echo () =
  with_sys (fun eng sys ->
      match call_from_thread eng sys ~op:echo_op (Hive.Types.P_int 42) with
      | Ok (Hive.Types.P_int 42), _ -> ()
      | _ -> Alcotest.fail "echo failed")

let test_queued_echo () =
  with_sys (fun eng sys ->
      match
        call_from_thread eng sys ~op:queued_echo_op (Hive.Types.P_int 7)
      with
      | Ok (Hive.Types.P_int 7), _ -> ()
      | _ -> Alcotest.fail "queued echo failed")

let test_error_propagates () =
  with_sys (fun eng sys ->
      match call_from_thread eng sys ~op:fail_op Hive.Types.P_unit with
      | Error Hive.Types.EAGAIN, _ -> ()
      | _ -> Alcotest.fail "expected EAGAIN")

let test_handler_exception_becomes_error () =
  with_sys (fun eng sys ->
      match call_from_thread eng sys ~op:raise_op Hive.Types.P_unit with
      | Error Hive.Types.EFAULT, _ -> ()
      | _ -> Alcotest.fail "expected EFAULT")

let test_unknown_op () =
  with_sys (fun eng sys ->
      match call_from_thread eng sys ~op:nonexistent_op Hive.Types.P_unit with
      | Error Hive.Types.EFAULT, _ -> ()
      | _ -> Alcotest.fail "expected EFAULT for unknown op")

let test_retry_survives_slow_op () =
  with_sys (fun eng sys ->
      (* 50 ms handler with a 5 ms per-attempt timeout: the client
         retransmits, the server suppresses the duplicates (the original
         is still executing), and the first reply completes the call. *)
      match
        call_from_thread eng sys ~op:slow_op ~timeout_ns:5_000_000L
          Hive.Types.P_unit
      with
      | Ok _, _ ->
        let c0 = sys.Hive.Types.cells.(0) in
        let c1 = sys.Hive.Types.cells.(1) in
        Alcotest.(check bool) "client retransmitted" true
          (Sim.Stats.value c0.Hive.Types.counters "rpc.retransmits" > 0);
        Alcotest.(check bool) "server suppressed duplicates" true
          (Sim.Stats.value c1.Hive.Types.counters "rpc.dup_suppressed" > 0)
      | _ -> Alcotest.fail "expected retransmission to ride out the slow op")

let test_timeout_after_retries_exhausted () =
  with_sys (fun eng sys ->
      (* A black-hole link to the server: every attempt is dropped, so the
         caller gives up only after the full retransmission budget. *)
      sys.Hive.Types.on_hint <- None;
      let sips = Flash.Machine.sips sys.Hive.Types.machine in
      Flash.Sips.degrade sips ~rng:(Sim.Prng.create 7)
        { Flash.Sips.deg_from = -1; deg_to = 1; from_ns = 0L;
          until_ns = 60_000_000_000L; drop_pct = 100; dup_pct = 0;
          delay_pct = 0; max_delay_ns = 0L };
      match
        call_from_thread eng sys ~op:echo_op ~timeout_ns:5_000_000L
          Hive.Types.P_unit
      with
      | Error Hive.Types.EHOSTDOWN, _ ->
        let c0 = sys.Hive.Types.cells.(0) in
        Alcotest.(check int) "used every retransmission"
          sys.Hive.Types.params.Hive.Params.rpc_max_retries
          (Sim.Stats.value c0.Hive.Types.counters "rpc.retransmits");
        Alcotest.(check int) "counted one timeout" 1
          (Sim.Stats.value c0.Hive.Types.counters "rpc.timeouts")
      | _ -> Alcotest.fail "expected timeout")

let test_known_dead_target_fast_fail () =
  with_sys (fun eng sys ->
      let c0 = sys.Hive.Types.cells.(0) in
      c0.Hive.Types.live_set <- [ 0 ];
      match call_from_thread eng sys ~op:echo_op Hive.Types.P_unit with
      | Error Hive.Types.EHOSTDOWN, dur ->
        (* No timeout wait: the live-set check short-circuits. *)
        Alcotest.(check bool) "instant failure" true
          (Int64.compare dur 1_000_000L < 0)
      | _ -> Alcotest.fail "expected EHOSTDOWN")

let test_large_args_cost_more () =
  with_sys (fun eng sys ->
      let timed arg_bytes =
        match
          call_from_thread eng sys ~op:echo_op ~arg_bytes
            Hive.Types.P_unit
        with
        | Ok _, dur -> dur
        | Error _, _ -> Alcotest.fail "call failed"
      in
      let small = timed 32 in
      let big = timed 4096 in
      Alcotest.(check bool) "copy through shared memory costs more" true
        (Int64.compare big small > 0))

let test_concurrent_calls () =
  with_sys (fun eng sys ->
      let done_count = ref 0 in
      for _ = 1 to 20 do
        ignore
          (Sim.Engine.spawn eng (fun () ->
               match
                 Hive.Rpc.call sys ~from:sys.Hive.Types.cells.(0) ~target:1
                   ~op:queued_echo_op Hive.Types.P_unit
               with
               | Ok _ -> incr done_count
               | Error _ -> ()))
      done;
      Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 30_000_000_000L) eng;
      Alcotest.(check int) "all 20 concurrent queued calls served" 20
        !done_count)

(* Three cells so a quorum survives killing the client cell. *)
let with_sys3 ?(params = Hive.Params.default) f =
  register ();
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = 3; mem_pages_per_node = 256 }
  in
  let sys = Hive.System.boot ~mcfg ~params ~ncells:3 ~wax:false eng in
  f eng sys

(* A reply addressed to a previous incarnation of the client cell — its
   call was issued, then the cell failed and was reintegrated with a
   bumped incarnation — must be discarded, never delivered into the new
   life (where a rebooted kernel reuses low call ids). *)
let test_reboot_drops_stale_reply () =
  with_sys3 (fun eng sys ->
      ignore
        (Sim.Engine.spawn eng ~name:"pre-reboot-caller" (fun () ->
             ignore
               (Hive.Rpc.call sys ~from:sys.Hive.Types.cells.(0) ~target:1
                  ~op:slow99_op ~timeout_ns:3_000_000_000L Hive.Types.P_unit)));
      ignore
        (Sim.Engine.spawn eng (fun () ->
             Sim.Engine.delay 100_000_000L;
             Hive.System.inject_node_failure sys 0));
      (* Recovery reintegrates cell 0 well before the 1.2 s handler
         finishes; its reply is then addressed to the dead incarnation. *)
      ignore (Hive.System.run_until sys ~deadline:5_000_000_000L (fun () -> false));
      let c0 = sys.Hive.Types.cells.(0) in
      Alcotest.(check bool) "cell 0 rebooted" true
        (c0.Hive.Types.incarnation > 0);
      Alcotest.(check bool) "pre-reboot reply dropped as stale" true
        (Sim.Stats.value c0.Hive.Types.counters "rpc.stale_reply_drops" >= 1);
      Alcotest.(check (list string)) "no stale acceptance recorded" []
        (List.map Hive.Invariants.to_string
           (Hive.Invariants.check_rpc_epochs sys));
      (* A fresh post-reboot call completes normally with its own payload;
         the discarded reply (P_int 99) cannot leak into it. *)
      match call_from_thread eng sys ~op:echo_op (Hive.Types.P_int 42) with
      | Ok (Hive.Types.P_int 42), _ -> ()
      | _ -> Alcotest.fail "post-reboot call failed")

(* Same scenario with the epoch check deliberately disabled: the stale
   acceptance must be recorded and the epoch invariant checker must name
   it (this is how the fuzzer proves the checker has teeth). *)
let test_epoch_checker_catches_disabled_check () =
  with_sys3
    ~params:{ Hive.Params.default with Hive.Params.rpc_epoch_check = false }
    (fun eng sys ->
      ignore
        (Sim.Engine.spawn eng (fun () ->
             ignore
               (Hive.Rpc.call sys ~from:sys.Hive.Types.cells.(0) ~target:1
                  ~op:slow99_op ~timeout_ns:3_000_000_000L Hive.Types.P_unit)));
      ignore
        (Sim.Engine.spawn eng (fun () ->
             Sim.Engine.delay 100_000_000L;
             Hive.System.inject_node_failure sys 0));
      ignore
        (Hive.System.run_until sys ~deadline:5_000_000_000L (fun () -> false));
      Alcotest.(check bool) "stale acceptance flagged" true
        (Hive.Invariants.check_rpc_epochs sys <> []))

(* A reply that arrives after the caller exhausted its retransmission
   budget and gave up: counted, dropped, and it must not complete (or
   corrupt) any later call. *)
let test_late_reply_after_timeout () =
  with_sys (fun eng sys ->
      (match
         call_from_thread eng sys ~op:slow99_op ~timeout_ns:5_000_000L
           Hive.Types.P_unit
       with
      | Error Hive.Types.EHOSTDOWN, _ -> ()
      | _ -> Alcotest.fail "expected the call to give up");
      (* call_from_thread ran the engine until idle, so the 1.2 s handler
         has completed and its reply has been delivered by now. *)
      let c0 = sys.Hive.Types.cells.(0) in
      Alcotest.(check int) "late reply counted and dropped" 1
        (Sim.Stats.value c0.Hive.Types.counters "rpc.late_replies");
      match call_from_thread eng sys ~op:echo_op (Hive.Types.P_int 7) with
      | Ok (Hive.Types.P_int 7), _ -> ()
      | _ -> Alcotest.fail "call after the late reply failed")

let test_duplicate_registration_rejected () =
  register ();
  Alcotest.check_raises "duplicate op"
    (Invalid_argument "Rpc.register: duplicate test.echo") (fun () ->
      Hive.Rpc.register echo_op (fun _ _ ~src:_ _ ->
          Hive.Types.Immediate (Ok Hive.Types.P_unit)))

let suite =
  [
    Alcotest.test_case "echo" `Quick test_echo;
    Alcotest.test_case "queued echo" `Quick test_queued_echo;
    Alcotest.test_case "handler error propagates" `Quick test_error_propagates;
    Alcotest.test_case "handler exception becomes error reply" `Quick
      test_handler_exception_becomes_error;
    Alcotest.test_case "unknown op" `Quick test_unknown_op;
    Alcotest.test_case "retry survives slow op" `Quick
      test_retry_survives_slow_op;
    Alcotest.test_case "timeout after retries exhausted" `Quick
      test_timeout_after_retries_exhausted;
    Alcotest.test_case "known-dead target fails fast" `Quick
      test_known_dead_target_fast_fail;
    Alcotest.test_case "large args cost more" `Quick test_large_args_cost_more;
    Alcotest.test_case "20 concurrent queued calls" `Quick
      test_concurrent_calls;
    Alcotest.test_case "reboot drops stale-incarnation replies" `Quick
      test_reboot_drops_stale_reply;
    Alcotest.test_case "epoch checker catches stale acceptance" `Quick
      test_epoch_checker_catches_disabled_check;
    Alcotest.test_case "late reply after timeout is dropped" `Quick
      test_late_reply_after_timeout;
    Alcotest.test_case "duplicate registration rejected" `Quick
      test_duplicate_registration_rejected;
  ]
