(** Kernel heap for published data structures.

   Structures that other cells read directly (clock words, COW tree nodes,
   ...) are serialized into a reserved region of the cell's own physical
   memory, so that careful references, bus errors and corruption behave
   exactly as on the hardware. Following Section 4.1 of the paper, the
   allocator writes a structure type identifier at the start of each
   object and the deallocator removes it: checking the tag is the first
   line of defense against invalid remote pointers. *)

val header_bytes : int
exception Out_of_kernel_memory
val create : base:int -> limit:int -> Types.kmem
val proc_of : Types.cell -> int
val mem : Types.system -> Flash.Memory.t
val alloc :
  Types.system -> Types.cell -> tag:int64 -> size:int -> int
val free :
  Types.system ->
  Types.cell -> addr:Flash.Addr.t -> size:int -> unit
val read_field :
  Types.system -> Types.cell -> addr:int -> index:int -> int64
val read_fields :
  Types.system ->
  Types.cell -> addr:int -> index:int -> count:int -> int64 array
val write_field :
  Types.system ->
  Types.cell -> addr:int -> index:int -> int64 -> unit
val read_tag :
  Types.system -> Types.cell -> addr:Flash.Addr.t -> int64
