lib/hive/cow.ml: Array Bytes Careful_ref Flash Int64 Kmem List Panic Types
