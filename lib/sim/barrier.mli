(** Cyclic synchronization barrier: the last of [parties] arrivals releases
    everyone. Used by parallel workloads and by Hive's double-global-barrier
    recovery protocol.

    A barrier can be torn down with {!abort} (all current and future waiters
    return {!Aborted} instead of blocking forever) or shrunk with
    {!remove_party} when a participant is known to have died; both exist so
    a failure *during* recovery releases the surviving participants instead
    of deadlocking them. *)

type t

(** Outcome of one {!await_abortable}: [Released] when all parties arrived,
    [Aborted] when the barrier was torn down. *)
type outcome = Released | Aborted

val create : int -> t

val parties : t -> int

(** Threads currently waiting in the present generation. *)
val arrived : t -> int

(** Has the barrier been aborted? Aborted barriers never block again. *)
val aborted : t -> bool

(** Block until [parties] threads have called [await]. Returns immediately
    if the barrier has been aborted. *)
val await : Engine.t -> t -> unit

(** Like {!await}, but reports whether the release was a genuine barrier
    completion or a teardown. *)
val await_abortable : Engine.t -> t -> outcome

(** Tear the barrier down: release every waiter with [Aborted], and make
    all future awaits return [Aborted] immediately. Idempotent. *)
val abort : Engine.t -> t -> unit

(** Shrink the barrier by one party (a participant died and will never
    arrive). If the remaining arrivals already satisfy the smaller count,
    the generation is released now; removing the last party aborts. *)
val remove_party : Engine.t -> t -> unit
