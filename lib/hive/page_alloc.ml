(* Per-cell page frame allocation with physical-level sharing (Sections
   3.2 and 5.4).

   Each cell manages a free list of the frames it owns. Under memory
   pressure the allocator can *borrow* frames from another cell (the
   memory home), which moves them to a reserved list and ignores them
   until the borrower returns them or fails. Requests carry constraints: a
   set of acceptable cells and a preferred cell; frames for internal
   kernel use must be local, since the firewall does not defend against
   wild writes by the memory home. *)

type Types.payload +=
  | P_borrow of { count : int }
  | P_borrowed of { pfns : int list }
  | P_return of { pfns : int list }

let borrow_op = Rpc.Op.declare "page_alloc.borrow"

let return_op = Rpc.Op.declare "page_alloc.return"

exception Out_of_memory

let free_count (c : Types.cell) = c.Types.free_frame_count

(* Local memory pressure: free frames below [pct] percent of the frames
   the cell owns (floor of 8 so tiny test cells still have a watermark).
   Used by the clock hand's low-water check and by Wax's pressure
   classification, replacing the old fixed 32-frame threshold that was
   meaningless for both tiny and 64-cell shapes. *)
let low_water (c : Types.cell) ~pct =
  max 8 (c.Types.total_frames * pct / 100)

let under_pressure (c : Types.cell) ~pct = free_count c < low_water c ~pct

(* Try to reclaim idle cached pages (a trivial stand-in for the VM clock
   hand): drop clean, unreferenced, unexported file pages. *)
let reclaim (_sys : Types.system) (c : Types.cell) ~want =
  let reclaimed = ref 0 in
  let victims = ref [] in
  Hashtbl.iter
    (fun lid pf ->
      if
        !reclaimed < want && Pfdat.is_idle pf && (not pf.Types.dirty)
        && (not pf.Types.extended)
        && pf.Types.borrowed_from = None
      then begin
        victims := (lid, pf) :: !victims;
        incr reclaimed
      end)
    c.Types.page_hash;
  List.iter
    (fun (lid, pf) ->
      (match lid.Types.tag with
      | Types.File_obj fid -> (
        match Hashtbl.find_opt c.Types.files_by_ino fid.Types.ino with
        | Some f -> Hashtbl.remove f.Types.cached_pages lid.Types.page
        | None -> ())
      | Types.Anon_obj _ -> ());
      Pfdat.remove c pf;
      Hashtbl.remove c.Types.frames pf.Types.pfn;
      Types.push_free c pf.Types.pfn)
    !victims;
  !reclaimed

(* Grab one local free frame if available. *)
let take_local (c : Types.cell) = Types.take_free c

(* Loan [count] frames to [client]: memory-home side of borrowing. *)
let loan_frames (sys : Types.system) (home : Types.cell) ~client ~count =
  let rec take n acc =
    if n = 0 then acc
    else
      match take_local home with
      | Some pfn ->
        let pf = Pfdat.of_frame home pfn in
        pf.Types.loaned_to <- Some client;
        home.Types.reserved_loans <- pfn :: home.Types.reserved_loans;
        take (n - 1) (pfn :: acc)
      | None -> acc
  in
  ignore sys;
  take count []

(* Borrow frames from [home] (RPC); they join the local free pool with
   extended pfdats marked borrowed. Returns the borrowed pfns. *)
let borrow_from (sys : Types.system) (c : Types.cell) ~home ~count =
  Types.bump c "page_alloc.borrows";
  match
    Rpc.call sys ~from:c ~target:home ~op:borrow_op (P_borrow { count })
  with
  | Ok (P_borrowed { pfns }) ->
    List.iter
      (fun pfn ->
        let pf = Pfdat.alloc_extended c ~pfn in
        pf.Types.borrowed_from <- Some home;
        Hashtbl.replace c.Types.frames pfn pf;
        Types.push_free_last c pfn)
      pfns;
    pfns
  | Ok _ | Error _ -> []

(* Return a borrowed frame to its memory home as soon as the cached data
   is no longer in use (the current, admittedly crude, policy). *)
let return_frame (sys : Types.system) (c : Types.cell) (pf : Types.pfdat) =
  match pf.Types.borrowed_from with
  | None -> invalid_arg "return_frame: not borrowed"
  | Some home ->
    Pfdat.free_extended c pf;
    Types.remove_free c pf.Types.pfn;
    ignore
      (Rpc.call sys ~from:c ~target:home ~op:return_op
         (P_return { pfns = [ pf.Types.pfn ] }))

(* Allocate one frame for cell [c].

   [kernel_only] forbids borrowed frames. [preferred] biases towards a
   memory home (Wax supplies the intercell preference list). *)
let alloc_frame ?(kernel_only = false) ?preferred (sys : Types.system)
    (c : Types.cell) =
  let try_preference () =
    (* Borrow from the preferred remote cell (CC-NUMA placement). *)
    match preferred with
    | Some home
      when home <> c.Types.cell_id
           && List.mem home c.Types.live_set
           && not kernel_only -> (
      match borrow_from sys c ~home ~count:1 with
      | pfn :: _ ->
        Types.remove_free c pfn;
        Some pfn
      | [] -> None)
    | _ -> None
  in
  match try_preference () with
  | Some pfn -> Pfdat.of_frame c pfn
  | None -> (
    match take_local c with
    | Some pfn -> Pfdat.of_frame c pfn
    | None ->
      (* Memory pressure: reclaim, then borrow per Wax preference order. *)
      if reclaim sys c ~want:8 > 0 then
        match take_local c with
        | Some pfn -> Pfdat.of_frame c pfn
        | None -> raise Out_of_memory
      else if kernel_only then raise Out_of_memory
      else begin
        let order =
          c.Types.alloc_preference
          @ List.filter
              (fun id -> id <> c.Types.cell_id)
              (Array.to_list (Array.map (fun cl -> cl.Types.cell_id) sys.Types.cells))
        in
        let rec try_borrow = function
          | [] -> raise Out_of_memory
          | home :: rest ->
            if
              home <> c.Types.cell_id
              && List.mem home c.Types.live_set
              && borrow_from sys c ~home ~count:8 <> []
            then
              match take_local c with
              | Some pfn -> Pfdat.of_frame c pfn
              | None -> raise Out_of_memory
            else try_borrow rest
        in
        try_borrow order
      end)

(* Free a frame: borrowed frames go back to their memory home; local
   frames rejoin the free list. *)
let free_frame (sys : Types.system) (c : Types.cell) (pf : Types.pfdat) =
  Pfdat.remove c pf;
  pf.Types.dirty <- false;
  pf.Types.refs <- 0;
  if pf.Types.borrowed_from <> None then return_frame sys c pf
  else begin
    Hashtbl.remove c.Types.frames pf.Types.pfn;
    Types.push_free c pf.Types.pfn
  end

let registered = ref false

let register_handlers () =
  if not !registered then begin
    registered := true;
    Rpc.register borrow_op (fun sys cell ~src arg ->
        match arg with
        | P_borrow { count } ->
          let pfns = loan_frames sys cell ~client:src ~count in
          Types.Immediate (Ok (P_borrowed { pfns }))
        | _ -> Types.Immediate (Error Types.EFAULT));
    Rpc.register return_op (fun sys cell ~src:_ arg ->
        match arg with
        | P_return { pfns } ->
          List.iter
            (fun pfn ->
              (match Hashtbl.find_opt cell.Types.frames pfn with
              | Some pf -> pf.Types.loaned_to <- None
              | None -> ());
              cell.Types.reserved_loans <-
                List.filter (fun p -> p <> pfn) cell.Types.reserved_loans;
              Types.push_free cell pfn;
              ignore sys)
            pfns;
          Types.Immediate (Ok Types.P_unit)
        | _ -> Types.Immediate (Error Types.EFAULT))
  end
