test/test_careful.ml: Alcotest Array Flash Hive Int64 Printf Sim
