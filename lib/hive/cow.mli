(** Copy-on-write trees for anonymous memory (Section 5.3).

   Anonymous pages are managed in copy-on-write trees. When a process
   forks, the leaf node is split, with one new leaf for the parent and one
   for the child; pages written after the fork are recorded in the new
   leaves, so only pages allocated before the fork are visible to the
   child. On a fault the process searches up the tree for the copy created
   by the nearest ancestor that wrote the page before forking.

   In Hive parent and child may live on different cells, so tree pointers
   cross cell boundaries. Nodes are serialized into the owning cell's
   kernel memory; remote lookups walk them with the careful reference
   protocol — the lookup never modifies interior nodes, so no wild-write
   vulnerability is created. When the page is found in a remote node, an
   RPC to the owning cell sets up the export/import binding. *)

val cow_tag : int64
val default_capacity : int
val f_node_id : int
val f_parent_addr : int
val f_parent_cell : int
val f_nentries : int
val f_capacity : int
val f_entries : int
exception Node_full
val node_size : int -> int
(* Reset the domain-local node-id generator (called by [System.boot]). *)
val reset_ids : unit -> unit
val alloc_node :
  Types.system ->
  Types.cell ->
  parent:Types.cow_ref option -> capacity:int -> Types.cow_ref
val create_root :
  Types.system ->
  Types.cell -> ?capacity:int -> unit -> Types.cow_ref
val fork :
  Types.system ->
  parent_cell:Types.cell ->
  child_cell:Types.cell ->
  Types.cow_ref ->
  ?capacity:int -> unit -> Types.cow_ref * Types.cow_ref
val node_id : Types.system -> Types.cow_ref -> int
val record_write :
  Types.system ->
  Types.cell -> Types.cow_ref -> page:int -> unit
val local_has_page :
  Types.system -> Types.cell -> addr:int -> page:int -> bool
type lookup_result =
    Found of Types.cow_ref
  | Not_present
  | Defended of Careful_ref.failure_reason
val lookup :
  Types.system ->
  Types.cell -> Types.cow_ref -> page:int -> lookup_result
val free_node :
  Types.system -> Types.cell -> Types.cow_ref -> unit
