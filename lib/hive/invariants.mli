(** System-wide invariant checkers for deterministic simulation testing.

    Each checker inspects the whole simulated machine — hardware firewall
    vectors, pfdat tables, COW trees in kernel memory, RPC bookkeeping,
    gate/recovery state — and reports violations of the properties the
    paper's fault-containment argument rests on. The fuzzer runs them at
    quiesce points and at end-of-run; a clean fault-free run and a clean
    fault-injected run must both report zero violations.

    Checks use [Flash.Memory.peek] (no simulated latency, no liveness
    checks), so they can run outside any simulation thread without
    perturbing the run they observe. *)

type violation = {
  inv : string;  (** checker name, e.g. "firewall-grant" *)
  detail : string;
}

val to_string : violation -> string

(** Run every instantaneous checker. A no-op (returns []) while recovery is
    in progress: the properties only hold at quiesce points.

    [exempt] lists cells whose kernel data was deliberately corrupted or
    destroyed (fault-injection victims, cells that failed and were
    rebooted with zeroed memory): walks stop silently at their nodes and
    their containment is judged by the other cells' checkers instead. *)
val check : ?exempt:Types.cell_id list -> Types.system -> violation list

(** Snapshot of outstanding client-side RPC calls as [(cell, call_id)]
    pairs. Used with {!check_rpc_drained} for the no-orphan property. *)
val rpc_snapshot : Types.system -> (Types.cell_id * int) list

(** Every call in [snapshot] must have completed (reply or dead-peer
    error) by now; calls still pending are orphans. Take the snapshot,
    advance the simulation past the longest RPC timeout, then call this. *)
val check_rpc_drained :
  Types.system -> snapshot:(Types.cell_id * int) list -> violation list

(** Every non-idempotent op body must have executed at most once per
    (server incarnation, call id): more means a retransmitted request
    slipped past the server's reply cache. Included in {!check}; exposed
    for targeted tests. *)
val check_rpc_at_most_once : Types.system -> violation list

(** No cell may have accepted a message stamped with an epoch other than
    its current incarnation. Included in {!check}; exposed for targeted
    tests. *)
val check_rpc_epochs : Types.system -> violation list

(** Import-cache coherence: every parked binding is an idle read-only
    extended file import whose data home is alive, still caches the page
    at the same frame, holds a matching export record, and whose file
    generation has not advanced past the binding's import generation — a
    parked binding surviving a home failure or a generation bump would
    serve stale data RPC-free. Included in {!check}; exposed for targeted
    tests. *)
val check_import_cache :
  Types.system -> cells:Types.cell list -> violation list

(** The split-brain oracle: no two cells may ever hold recovery
    mastership concurrently while both are live. Overlap windows are
    latched continuously by {!Types.master_begin} (via the event bus),
    so this reports dual-master instants that closed long before the
    quiesce point; it also flags a live cell still holding mastership
    outside any recovery. Checked by {!check} unconditionally — even
    while recovery is in progress. *)
val check_single_master : Types.system -> violation list

(** Salvaged-page coherence: a binding salvaged from a dead home's
    still-readable memory must not survive that home's reintegration.
    Included in {!check}; exposed for targeted tests. *)
val check_salvage :
  Types.system -> cells:Types.cell list -> violation list
