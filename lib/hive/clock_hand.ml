(* The VM clock-hand process (Sections 3.2 and 5.7).

   Each cell runs a page-reclaim daemon. The paper: "There are no
   operations in the memory sharing subsystem for a cell to request that
   another return its page or page frame... This information will
   eventually be provided by Wax, which will direct the virtual memory
   clock hand process running on each cell to preferentially free pages
   whose memory home is under memory pressure."

   Implemented exactly so: every sweep the daemon returns idle borrowed
   frames whose memory home appears in the Wax hint list
   ([clock_hand_targets]), and under local pressure it additionally
   reclaims idle cached file pages. *)

let sweep_period_ns = 200_000_000L

(* One sweep; returns the number of frames released. *)
let sweep (sys : Types.system) (c : Types.cell) =
  let released = ref 0 in
  (* 1. Help pressured memory homes: return their idle loaned frames. *)
  let targets = c.Types.clock_hand_targets in
  if targets <> [] then begin
    let victims = ref [] in
    Hashtbl.iter
      (fun _ (pf : Types.pfdat) ->
        match pf.Types.borrowed_from with
        | Some home
          when List.mem home targets
               && Pfdat.is_idle pf && (not pf.Types.dirty)
               && pf.Types.imported_from = None ->
          victims := pf :: !victims
        | _ -> ())
      c.Types.frames;
    List.iter
      (fun pf ->
        (* Only frames still sitting in the free pool can be returned. *)
        if List.mem pf.Types.pfn c.Types.free_frames then begin
          (try
             Page_alloc.return_frame sys c pf;
             incr released
           with Types.Syscall_error _ -> ())
        end)
      !victims
  end;
  (* 2. Local pressure (watermark scaled to the frames this cell owns):
     drop idle clean cached pages, then swap. *)
  if
    Page_alloc.under_pressure c
      ~pct:sys.Types.params.Params.clock_hand_low_pct
  then begin
    released := !released + Page_alloc.reclaim sys c ~want:32;
    released := !released + Swap.swap_out_idle sys c ~want:16
  end;
  if !released > 0 then Types.bump ~by:!released c "clock_hand.released";
  !released

let start (sys : Types.system) (c : Types.cell) =
  let thr =
    Sim.Engine.spawn sys.Types.eng
      ~name:(Printf.sprintf "cell%d.clockhand" c.Types.cell_id)
      (fun () ->
        while Types.cell_alive c do
          Sim.Engine.delay sweep_period_ns;
          if Types.cell_alive c then ignore (sweep sys c)
        done)
  in
  c.Types.kernel_threads <- thr :: c.Types.kernel_threads
