lib/workloads/pmake.ml: Array Buffer Bytes Fun Hive Int64 List Printf Sim Workload
