(* Recovery after a confirmed cell failure (Section 4.3).

   Given consensus on the live set, each surviving cell runs recovery to
   clean up dangling references and determine which processes must be
   killed. A double global barrier synchronizes the preemptive discard:

   - before barrier 1, each cell flushes its TLBs and removes remote
     mappings (faults arriving later are held up on the client side);
   - after barrier 1, no valid remote accesses are pending, so each cell
     revokes firewall permissions it granted to the failed cells, discards
     every page they could have written (notifying the file system about
     lost dirty pages), and cleans its VM structures;
   - after barrier 2, cells resume normal operation.

   Recovery must itself survive faults. If a participant dies *during* a
   round, the round's barriers are aborted (never waited on forever) and
   the surviving cells restart the round with the enlarged dead set; the
   round counter [sys.recovery_round] names the current attempt, and each
   participant loops until it completes a round that is still current.

   At the end of a round a recovery master is elected from the new live
   set; it runs hardware diagnostics on the failed nodes and (if they
   pass) reboots and reintegrates the failed cells via the reintegration
   hook installed by [System.boot]. *)

type Types.payload +=
  | P_recovery_start of { dead : Types.cell_id list }

let start_op = Rpc.Op.declare "recovery.start"

let diagnostics_ns = 18_000_000L

(* Poll period while waiting for a partition to heal so an excised
   still-running cell can be stopped and reintegrated. *)
let reclaim_poll_ns = 50_000_000L

(* The per-cell recovery algorithm, run in its own kernel thread. It loops
   until it completes a round that is still the current one: any barrier
   abort (or a round-counter change observed after a barrier) means a
   participant died mid-round and the round was restarted with a larger
   dead set. *)
let recovery_sequence (sys : Types.system) (c : Types.cell) =
  let p = sys.Types.params in
  let eng = sys.Types.eng in
  sys.Types.recovery_events <-
    (c.Types.cell_id, Sim.Engine.now eng) :: sys.Types.recovery_events;
  (* Mastership spans the whole round INCLUDING deferred reclamation: a
     confirmed-dead cell still running behind a partition remains this
     master's responsibility until the heal lets it be stopped and
     rebooted, so master_end must wait for the last deferred reclaim. *)
  let deferred_reclaims = ref 0 in
  let release_mastership () =
    if !deferred_reclaims = 0 then Types.master_end sys c.Types.cell_id
  in
  let rec round () =
    let round_no = sys.Types.recovery_round in
    let dead = sys.Types.recovery_dead in
    let b1 = sys.Types.recovery_barrier1 in
    let b2 = sys.Types.recovery_barrier2 in
    c.Types.in_recovery <- true;
    Gate.close sys c;
    Types.bump c "recovery.rounds";
    c.Types.live_set <-
      List.filter (fun id -> not (List.mem id dead)) c.Types.live_set;
    (* The recovery master (lowest live cell id) stamps the global recovery
       timeline; barrier phases are global sync points, so one cell's view
       of them is the system's. *)
    let min_live = List.fold_left min max_int c.Types.live_set in
    let is_master = c.Types.cell_id = min_live in
    (* Latch mastership the instant it is assumed: the split-brain oracle
       ([Invariants.check_single_master]) sees every overlap window, even
       one that closes before the run quiesces. *)
    if is_master then Types.master_begin sys c.Types.cell_id;
    let note phase =
      if is_master then Types.note_phase sys ~cell:c.Types.cell_id phase
    in
    let await n b =
      c.Types.recovery_barrier_joined <- (round_no, n);
      match b with
      | Some b -> Sim.Barrier.await_abortable eng b
      | None -> Sim.Barrier.Released
    in
    (* A barrier abort (or a stale round counter) means the round was
       restarted: go again with the enlarged dead set if this cell is still
       a participant. *)
    let restart () =
      if Types.cell_alive c && sys.Types.recovery_round <> round_no then begin
        Types.bump c "recovery.round_restarts";
        round ()
      end
      else begin
        (* Defensive: an abort without a restart (or our own death) must
           not leave the cell gated forever. *)
        Types.master_end sys c.Types.cell_id;
        c.Types.in_recovery <- false;
        if Types.cell_alive c then Gate.open_ sys c
      end
    in
    (* Phase 1: TLB flush + removal of remote mappings and import bindings. *)
    Vm.flush_remote_bindings ~dead sys c;
    Sim.Engine.delay p.Params.recovery_phase_ns;
    match await 1 b1 with
    | Sim.Barrier.Aborted -> restart ()
    | Sim.Barrier.Released -> (
      note "recovery.barrier1";
      (* Phase 2: nothing remote is pending now; revoke grants and discard
         everything the failed cells could have written. (The ablation knob
         models a system without preemptive discard: corrupt pages stay.) *)
      let discarded =
        if p.Params.enable_preemptive_discard then
          Vm.preemptive_discard sys c ~dead
        else 0
      in
      note "recovery.discard";
      Sim.Trace.info eng "cell %d recovery: discarded %d pages" c.Types.cell_id
        discarded;
      (* Kill processes that depended on resources of the failed cells. *)
      List.iter
        (fun (proc : Types.process) ->
          if
            proc.Types.pstate <> Types.Proc_zombie
            && List.exists (fun d -> List.mem d dead) proc.Types.uses_cells
          then begin
            proc.Types.killed_by_failure <- true;
            Types.bump c "recovery.procs_killed";
            match proc.Types.thread with
            | Some t -> Sim.Engine.kill eng t
            | None -> ()
          end)
        c.Types.processes;
      Sim.Engine.delay p.Params.recovery_phase_ns;
      match await 2 b2 with
      | Sim.Barrier.Aborted -> restart ()
      | Sim.Barrier.Released ->
        if sys.Types.recovery_round <> round_no then
          (* A restart raced the final barrier release: go again. *)
          round ()
        else begin
          note "recovery.barrier2";
          (* Back to normal operation. *)
          c.Types.suspected <- [];
          c.Types.in_recovery <- false;
          Gate.open_ sys c;
          note "recovery.resume";
          (* The recovery master finishes the round. *)
          if is_master then begin
            (* A master that can no longer reach a strict majority of the
               new live set is on the minority side of a partition that
               armed mid-round; finishing here would run concurrently
               with the majority's master. Stand down instead. *)
            let reachable_live =
              List.filter
                (fun id ->
                  id = c.Types.cell_id
                  || not (Careful_ref.partitioned sys c ~target:id))
                c.Types.live_set
            in
            if
              p.Params.agreement_quorum_check
              && List.length reachable_live * 2 <= List.length c.Types.live_set
            then begin
              Types.sys_bump sys "recovery.master_standdown";
              Types.note_phase sys ~cell:c.Types.cell_id
                "recovery.master_standdown";
              Types.master_end sys c.Types.cell_id;
              Panic.panic sys c "partition: recovery master lost quorum"
            end
            else begin
              (* Diagnose the failed nodes' hardware. *)
              Sim.Engine.delay diagnostics_ns;
              if sys.Types.recovery_round <> round_no then
                (* A participant died while diagnostics ran: rejoin the
                   restarted round. *)
                round ()
              else begin
                (* Diagnostics passed: repair and reintegrate every failed
                   cell, then declare the recovery over. A confirmed-dead
                   cell still running on the far side of a partition cannot
                   be stopped or rebooted yet: leave it excised and poll
                   until the partition heals, then stop it and reboot it
                   into the new live set — healed halves reconcile into one
                   live set instead of two. *)
                (if p.Params.auto_reintegrate then begin
                   let reintegrate_now d =
                     Types.note_phase sys ~cell:c.Types.cell_id
                       "recovery.reintegrate";
                     Types.sys_bump sys "recovery.reintegrated";
                     match sys.Types.reintegrate_fn with
                     | Some f -> f d
                     | None -> ()
                   in
                   let rec reclaim d =
                     let dc = sys.Types.cells.(d) in
                     if Types.cell_alive c && not (List.mem d c.Types.live_set)
                     then begin
                       if
                         dc.Types.cstatus <> Types.Cell_down
                         && Careful_ref.partitioned sys c ~target:d
                       then
                         Sim.Engine.schedule eng ~after:reclaim_poll_ns
                           (fun () -> reclaim d)
                       else begin
                         if dc.Types.cstatus <> Types.Cell_down then
                           Panic.panic sys dc
                             "partition healed: stopped for reintegration";
                         reintegrate_now d;
                         decr deferred_reclaims;
                         release_mastership ()
                       end
                     end
                     else begin
                       (* Someone else reclaimed it (or we died): done. *)
                       decr deferred_reclaims;
                       release_mastership ()
                     end
                   in
                   List.iter
                     (fun d ->
                       let dc = sys.Types.cells.(d) in
                       if dc.Types.cstatus = Types.Cell_down then
                         reintegrate_now d
                       else if not (Careful_ref.partitioned sys c ~target:d)
                       then begin
                         Panic.panic sys dc
                           "declared failed by distributed agreement";
                         reintegrate_now d
                       end
                       else begin
                         Types.note_phase sys ~cell:c.Types.cell_id
                           "recovery.reclaim_deferred";
                         incr deferred_reclaims;
                         Sim.Engine.schedule eng ~after:reclaim_poll_ns
                           (fun () -> reclaim d)
                       end)
                     (List.sort compare dead)
                 end);
                sys.Types.recovery_complete_at <- Sim.Engine.now eng;
                sys.Types.recovery_round_active <- false;
                sys.Types.recovery_in_progress <- false;
                Types.sys_bump sys "recovery.completed";
                release_mastership ();
                match sys.Types.wax_restart with
                | Some f -> f sys
                | None -> ()
              end
            end
          end
        end)
  in
  round ();
  (* Whatever path ended the loop, this cell holds no mastership beyond
     any still-deferred reclaims (no-op for non-masters; killed threads
     never get here and are handled by the liveness filter in
     [Types.master_begin]). *)
  release_mastership ();
  c.Types.recovery_active <- false

let start_recovery_thread (sys : Types.system) (c : Types.cell) =
  c.Types.recovery_active <- true;
  let thr =
    Sim.Engine.spawn sys.Types.eng
      ~name:(Printf.sprintf "cell%d.recovery" c.Types.cell_id)
      (fun () -> recovery_sequence sys c)
  in
  c.Types.kernel_threads <- thr :: c.Types.kernel_threads

let live_participants (sys : Types.system) =
  Array.to_list sys.Types.cells
  |> List.filter_map (fun (c : Types.cell) ->
         if
           Types.cell_alive c
           && not (List.mem c.Types.cell_id sys.Types.recovery_dead)
         then Some c
         else None)

let make_barriers (sys : Types.system) parties =
  sys.Types.recovery_barrier1 <- Some (Sim.Barrier.create (max 1 parties));
  sys.Types.recovery_barrier2 <- Some (Sim.Barrier.create (max 1 parties))

(* Kick off a recovery round for the confirmed dead set. Called on the
   accusing cell after agreement (or directly by the failure oracle).
   [by] names the initiating cell: under a partition only the cells it
   can reach participate in the round — the far side cannot hear the
   barriers and would deadlock them, and a "dead" cell that is merely
   unreachable cannot be stopped from here (it stays running, excised
   from the survivors' live sets until the partition heals). *)
let initiate ?by (sys : Types.system) ~dead =
  sys.Types.recovery_in_progress <- true;
  sys.Types.recovery_dead <- dead;
  sys.Types.recovery_round <- sys.Types.recovery_round + 1;
  sys.Types.recovery_round_active <- true;
  Types.sys_bump sys "recovery.initiated";
  let unreachable_from_initiator target =
    match by with
    | None -> false
    | Some b -> Careful_ref.partitioned sys sys.Types.cells.(b) ~target
  in
  (* Force any "dead" cell that is in fact still running (erratic kernel)
     to stop: the confirmed consensus supersedes its own opinion. *)
  List.iter
    (fun d ->
      let dc = sys.Types.cells.(d) in
      if dc.Types.cstatus <> Types.Cell_down then
        if unreachable_from_initiator d then
          Types.sys_bump sys "recovery.excised_unreachable"
        else Panic.panic sys dc "declared failed by distributed agreement")
    dead;
  let live =
    live_participants sys
    |> List.filter (fun (c : Types.cell) ->
           (match by with None -> true | Some b -> c.Types.cell_id = b)
           || not (unreachable_from_initiator c.Types.cell_id))
  in
  sys.Types.recovery_participants <-
    List.map (fun (c : Types.cell) -> c.Types.cell_id) live;
  make_barriers sys (List.length live);
  List.iter (fun c -> start_recovery_thread sys c) live

(* A cell died. If a double-barrier round is in flight and the dead cell
   was a participant (not already in the confirmed dead set), the paper's
   protocol restarts the round with the enlarged dead set: bump the round
   counter, install fresh barriers sized to the shrunken live set, then
   abort the old barriers so nobody waits on a party that will never
   arrive. Participants still inside the round loop observe the abort and
   go again; participants that had already finished (or the master parked
   in diagnostics) are re-spawned or rejoin via the round counter. *)
let cell_died (sys : Types.system) id =
  if
    sys.Types.recovery_round_active
    && not (List.mem id sys.Types.recovery_dead)
  then begin
    let eng = sys.Types.eng in
    sys.Types.recovery_dead <- id :: sys.Types.recovery_dead;
    sys.Types.recovery_round <- sys.Types.recovery_round + 1;
    Types.sys_bump sys "recovery.round_restarts";
    Types.note_phase sys ~cell:id "recovery.restart";
    Sim.Trace.info eng
      "cell %d died during recovery round %d: restarting with enlarged dead \
       set"
      id sys.Types.recovery_round;
    (* Restart among the cells already in the round: a live cell outside
       the old participant set (e.g. on the far side of a partition) must
       not be counted into barriers it will never reach. *)
    let live =
      live_participants sys
      |> List.filter (fun (c : Types.cell) ->
             List.mem c.Types.cell_id sys.Types.recovery_participants)
    in
    sys.Types.recovery_participants <-
      List.map (fun (c : Types.cell) -> c.Types.cell_id) live;
    let old1 = sys.Types.recovery_barrier1 in
    let old2 = sys.Types.recovery_barrier2 in
    make_barriers sys (List.length live);
    (match old1 with Some b -> Sim.Barrier.abort eng b | None -> ());
    (match old2 with Some b -> Sim.Barrier.abort eng b | None -> ());
    (* Survivors whose recovery thread already exited need a fresh one;
       the rest loop back when their barrier await returns [Aborted]. *)
    List.iter
      (fun (c : Types.cell) ->
        if not c.Types.recovery_active then start_recovery_thread sys c)
      live
  end

let registered = ref false

let register_handlers () =
  if not !registered then begin
    registered := true;
    Rpc.register start_op (fun sys cell ~src:_ arg ->
        match arg with
        | P_recovery_start { dead } ->
          (* The confirmed dead set travels in the request; the round state
             is system-global in the simulation, so just join the round. *)
          ignore dead;
          if not cell.Types.recovery_active then
            start_recovery_thread sys cell;
          Types.Immediate (Ok Types.P_unit)
        | _ -> Types.Immediate (Error Types.EFAULT))
  end
