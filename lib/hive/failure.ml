(* Failure hints (Section 4.3).

   A cell is considered potentially failed when: an RPC to it times out; an
   access to its memory causes a bus error; its published clock word stops
   incrementing; or data read from its memory fails the consistency checks
   of the careful reference protocol. A hint triggers distributed
   agreement immediately; confirmation is required before recovery. *)

let handle_hint (sys : Types.system) (reporter : Types.cell) ~suspect ~reason =
  if
    Types.cell_alive reporter
    && (not reporter.Types.in_recovery)
    && List.mem suspect reporter.Types.live_set
    && suspect <> reporter.Types.cell_id
    && not (List.mem suspect reporter.Types.suspected)
  then begin
    reporter.Types.suspected <- suspect :: reporter.Types.suspected;
    Types.bump reporter "failure.hints";
    Types.note_phase sys ~cell:reporter.Types.cell_id "recovery.hint";
    Sim.Trace.info sys.Types.eng "cell %d suspects cell %d (%s)"
      reporter.Types.cell_id suspect reason;
    (* Run agreement from a fresh kernel thread: hints fire from fault
       paths and interrupt handlers that must not block for milliseconds. *)
    let thr =
      Sim.Engine.spawn sys.Types.eng
        ~name:(Printf.sprintf "cell%d.agreement" reporter.Types.cell_id)
        (fun () -> Agreement.run sys reporter ~suspect ~reason)
    in
    reporter.Types.kernel_threads <- thr :: reporter.Types.kernel_threads
  end

let install (sys : Types.system) =
  sys.Types.on_hint <- Some (handle_hint sys)
