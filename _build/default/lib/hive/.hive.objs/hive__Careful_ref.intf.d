lib/hive/careful_ref.mli: Bytes Flash Types
