(* Cell construction and boot.

   When the system boots, each cell is assigned a range of nodes that it
   owns throughout execution; it manages their processors, memory and I/O
   devices as an independent kernel (Figure 3.1). Boot reserves kernel
   pages on the boss node (holding the published clock word, Wax slots and
   serialized kernel structures), grants its own processors write access
   to all of its memory, and starts the RPC dispatch and clock threads. *)

let kernel_reserved_pages = 64

let make (mcfg : Flash.Config.t) ~id ~nodes : Types.cell =
  let boss = List.hd nodes in
  let kmem_base = boss * Flash.Config.mem_bytes_per_node mcfg in
  let kmem_limit = kmem_base + (kernel_reserved_pages * mcfg.Flash.Config.page_size) in
  {
    Types.cell_id = id;
    cell_nodes = nodes;
    boss_node = boss;
    cstatus = Types.Cell_up;
    mem_alive = false;
    live_set = [];
    page_hash = Hashtbl.create 1024;
    frames = Hashtbl.create 1024;
    free_frames = [];
    free_frame_count = 0;
    total_frames = 0;
    reserved_loans = [];
    files = Hashtbl.create 64;
    files_by_ino = Hashtbl.create 64;
    next_ino = 0;
    next_disk_block = 16;
    kmem =
      {
        Types.kmem_base;
        kmem_limit;
        (* First words reserved: clock word and incarnation slots. *)
        kmem_next = kmem_base + 128;
        kmem_free = [];
      };
    clock_addr = kmem_base;
    processes = [];
    user_gate_open = true;
    gate_waiters = [];
    next_call_id = 0;
    incarnation = 0;
    rpc_rng = Sim.Prng.create (0x5EED0 + id);
    pending_calls = Hashtbl.create 64;
    rpc_sessions = Hashtbl.create 8;
    rpc_queue = Sim.Mailbox.create ();
    release_queue = Sim.Mailbox.create ();
    import_cache = [];
    readahead = Hashtbl.create 16;
    pending_releases = Hashtbl.create 16;
    flush_epoch = 0;
    swap_table = Hashtbl.create 64;
    swap_blocks_used = 0;
    swap_free_blocks = [];
    suspected = [];
    alert_votes = [];
    false_alerts = [];
    in_recovery = false;
    recovery_active = false;
    recovery_barrier_joined = (0, 0);
    alloc_preference = [];
    clock_hand_targets = [];
    swap_hint = 0;
    salvaged_by_home = Hashtbl.create 16;
    rr_cpu = 0;
    wax_slot = kmem_base + 8;
    kernel_threads = [];
    counters = Sim.Stats.registry ();
    fault_in_cache_ns = Sim.Stats.summary ();
    remote_fault_ns = Sim.Stats.summary ();
  }

(* Populate the free-frame list: every owned page except the kernel
   reserve on the boss node. *)
let init_frames (sys : Types.system) (c : Types.cell) =
  let cfg = sys.Types.mcfg in
  let frames = ref [] in
  List.iter
    (fun node ->
      let first = Flash.Addr.first_pfn_of_node cfg node in
      let skip = if node = c.Types.boss_node then kernel_reserved_pages else 0 in
      for pfn = first + skip to first + cfg.Flash.Config.mem_pages_per_node - 1 do
        frames := pfn :: !frames
      done)
    c.Types.cell_nodes;
  Types.set_free c (List.rev !frames);
  c.Types.total_frames <- c.Types.free_frame_count

(* Grant this cell's processors write access to all of its own memory;
   remote cells get nothing until an export grants them a page. The vector
   is overwritten, not OR-ed: on a reboot after a failure the hardware
   still holds the grants the previous incarnation handed out, and
   inheriting them would leave remote cells able to wild-write memory the
   new kernel never exported. *)
let init_firewall (sys : Types.system) (c : Types.cell) =
  let fw = Flash.Machine.firewall sys.Types.machine in
  let own = Flash.Firewall.proc_mask c.Types.cell_nodes in
  List.iter
    (fun node -> Flash.Firewall.set_node_default fw ~by:node ~node own)
    c.Types.cell_nodes

(* Boot runs inside a simulation thread. *)
let boot (sys : Types.system) (c : Types.cell) =
  init_frames sys c;
  init_firewall sys c;
  c.Types.live_set <-
    Array.to_list sys.Types.cells |> List.map (fun cl -> cl.Types.cell_id);
  (* Initialize the published clock word and Wax slot. *)
  Flash.Memory.write_i64 sys.Types.eng
    (Flash.Machine.memory sys.Types.machine)
    ~by:(Types.boss_proc c) c.Types.clock_addr 0L;
  Flash.Memory.write_i64 sys.Types.eng
    (Flash.Machine.memory sys.Types.machine)
    ~by:(Types.boss_proc c) c.Types.wax_slot 0L;
  Rpc.start_threads sys c;
  Clock.start sys c;
  Clock_hand.start sys c;
  (* Reaper: releases imports dropped by exiting processes (process
     teardown itself runs outside any thread context). The queue is
     drained in bursts so the releases coalesce into one vectored RPC per
     data home instead of one RPC per page. *)
  let reaper =
    Sim.Engine.spawn sys.Types.eng
      ~name:(Printf.sprintf "cell%d.reaper" c.Types.cell_id)
      (fun () ->
        let rec loop () =
          match Sim.Mailbox.receive sys.Types.eng c.Types.release_queue with
          | Some pf ->
            let burst = ref [ pf ] in
            let rec drain () =
              match Sim.Mailbox.try_receive c.Types.release_queue with
              | Some q ->
                burst := q :: !burst;
                drain ()
              | None -> ()
            in
            drain ();
            let live, orphaned =
              List.partition
                (fun (q : Types.pfdat) ->
                  match q.Types.imported_from with
                  | Some home -> List.mem home c.Types.live_set
                  | None -> false)
                !burst
            in
            List.iter (fun q -> Share.drop_import c q) orphaned;
            (try Share.release_many sys c live
             with Types.Syscall_error _ -> Types.bump c "fs.release_errors");
            loop ()
          | None -> ()
        in
        loop ())
  in
  c.Types.kernel_threads <- reaper :: c.Types.kernel_threads;
  let now = Sim.Engine.now sys.Types.eng in
  if Int64.compare now sys.Types.last_boot_ns > 0 then
    sys.Types.last_boot_ns <- now;
  Types.bump c "cell.boots"

(* Spawn a kernel thread whose uncaught exceptions panic this cell (a
   kernel bug must crash only its own cell, never the simulation). *)
let spawn_kernel (sys : Types.system) (c : Types.cell) ~name body =
  let thr =
    Sim.Engine.spawn sys.Types.eng ~name (fun () ->
        try body () with
        | Panic.Kernel_corruption _ -> ()
        | e ->
          Panic.panic sys c
            (Printf.sprintf "kernel thread %s died: %s" name
               (Printexc.to_string e)))
  in
  c.Types.kernel_threads <- thr :: c.Types.kernel_threads;
  thr
