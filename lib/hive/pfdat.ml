(* Page frame data structures (Section 5.1).

   Each page frame in paged memory is managed by a pfdat recording the
   logical page id of the data stored in the frame; pfdats are linked into
   a per-cell hash table allowing lookup by logical id. Hive adds
   dynamically-allocated *extended pfdats* that bind a remote page (import)
   or a borrowed remote frame into the local table, letting most of the
   kernel operate on remote pages as if they were local. *)

let make ~pfn ~table_cell : Types.pfdat =
  {
    pfn;
    table_cell;
    lid = None;
    dirty = false;
    refs = 0;
    pins = 0;
    exported_to = [];
    imported_from = None;
    write_granted_to = [];
    loaned_to = None;
    borrowed_from = None;
    extended = false;
    cached = false;
    import_gen = 0;
    salvaged_from = None;
  }

(* Find or create the pfdat for a frame in this cell's table. *)
let of_frame (c : Types.cell) pfn =
  match Hashtbl.find_opt c.Types.frames pfn with
  | Some pf -> pf
  | None ->
    let pf = make ~pfn ~table_cell:c.Types.cell_id in
    Hashtbl.replace c.Types.frames pfn pf;
    pf

let lookup (c : Types.cell) lid = Hashtbl.find_opt c.Types.page_hash lid

let insert (c : Types.cell) lid (pf : Types.pfdat) =
  pf.Types.lid <- Some lid;
  Hashtbl.replace c.Types.page_hash lid pf

let remove (c : Types.cell) (pf : Types.pfdat) =
  (match pf.Types.lid with
  | Some lid -> Hashtbl.remove c.Types.page_hash lid
  | None -> ());
  pf.Types.lid <- None

(* Allocate an extended pfdat naming a page that lives elsewhere. *)
let alloc_extended (c : Types.cell) ~pfn =
  let pf = make ~pfn ~table_cell:c.Types.cell_id in
  pf.Types.extended <- true;
  pf

let free_extended (c : Types.cell) (pf : Types.pfdat) =
  (* A parked binding being torn down (recovery flush, invalidation,
     writable rebind) must leave the import cache with it. *)
  if pf.Types.cached then begin
    pf.Types.cached <- false;
    c.Types.import_cache <- List.filter (fun q -> q != pf) c.Types.import_cache
  end;
  remove c pf;
  pf.Types.imported_from <- None;
  Hashtbl.remove c.Types.frames pf.Types.pfn

let is_idle (pf : Types.pfdat) =
  pf.Types.refs = 0 && pf.Types.pins = 0 && pf.Types.exported_to = []
  && pf.Types.loaned_to = None

let iter_pages (c : Types.cell) f = Hashtbl.iter (fun _ pf -> f pf) c.Types.page_hash
