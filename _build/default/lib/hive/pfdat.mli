(** Page frame data structures (Section 5.1).

   Each page frame in paged memory is managed by a pfdat recording the
   logical page id of the data stored in the frame; pfdats are linked into
   a per-cell hash table allowing lookup by logical id. Hive adds
   dynamically-allocated *extended pfdats* that bind a remote page (import)
   or a borrowed remote frame into the local table, letting most of the
   kernel operate on remote pages as if they were local. *)

val make : pfn:int -> table_cell:Types.cell_id -> Types.pfdat
val of_frame : Types.cell -> int -> Types.pfdat
val lookup :
  Types.cell -> Types.logical_id -> Types.pfdat option
val insert :
  Types.cell -> Types.logical_id -> Types.pfdat -> unit
val remove : Types.cell -> Types.pfdat -> unit
val alloc_extended : Types.cell -> pfn:int -> Types.pfdat
val free_extended : Types.cell -> Types.pfdat -> unit
val is_idle : Types.pfdat -> bool
val iter_pages : Types.cell -> (Types.pfdat -> unit) -> unit
