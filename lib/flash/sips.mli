(** SIPS: the short interprocessor send facility added to the FLASH
    coherence controller for Hive (Section 6 of the paper).

    Each SIPS delivers one cache line of data (128 bytes) in about the
    latency of a remote cache miss, with the reliability and flow control
    of a cache miss, raising an interrupt at the receiver. Separate
    request and reply receive queues per node make deadlock avoidance easy.

    Message payloads are OCaml values under the open type {!message}
    (extended by the kernel's RPC layer); the declared [size] models the
    128-byte limit — anything larger must be passed by reference through
    shared memory.

    The fault model extends the paper's: besides whole-node failures, a
    {!degradation} window makes a set of links drop, duplicate or delay
    messages for a bounded time — the observable behavior of a flaky
    coherence controller on a failing node. All draws come from the
    window's own seeded PRNG, so experiments stay deterministic. *)

type message = ..

type kind = Request | Reply

exception Too_large of int

exception Target_failed of int

type envelope = { src_proc : int; size : int; msg : message }

(** A window of link degradation: messages from [deg_from] to [deg_to]
    (-1 = any) between [from_ns, until_ns) are dropped, duplicated or
    delayed with the given percent probabilities; delayed/duplicated
    deliveries add up to [max_delay_ns] of extra latency. *)
type degradation = {
  deg_from : int;
  deg_to : int;
  from_ns : int64;
  until_ns : int64;
  drop_pct : int;
  dup_pct : int;
  delay_pct : int;
  max_delay_ns : int64;
}

(** A directed blackout window: every message from [part_from] to
    [part_to] (-1 = any node) whose flight overlaps [from_ns, until_ns)
    is lost on the wire — the link is severed in that direction, with no
    probability involved. Asymmetric reachability is a window armed in
    only one direction; a full partition arms both. *)
type partition = {
  part_from : int;
  part_to : int;
  part_from_ns : int64;
  part_until_ns : int64;
}

type t

val max_payload : int

val create : Sim.Engine.t -> Config.t -> t

(** Mark a node down: sends to it raise {!Target_failed}, and deliveries
    already in flight are discarded (the queue epoch is bumped). *)
val fail_node : t -> int -> unit

(** Mark a node up again, resetting its hardware receive queues — envelopes
    queued before the failure belong to the dead incarnation and are
    purged, not replayed into the rebooted kernel. *)
val restore_node : t -> int -> unit

(** Arm a degradation window; [rng] drives that window's per-message
    drop/dup/delay draws (pass a generator salted per window so arming
    several never perturbs each other). Expired windows are pruned
    automatically. *)
val degrade : t -> rng:Sim.Prng.t -> degradation -> unit

val clear_degradations : t -> unit

(** Arm a directed blackout window. Messages whose flight overlaps the
    window are lost (counted, not delivered), and when the window expires
    the destination's receive queues are scrubbed of envelopes that
    originated behind the partition — the {!restore_node} stale-envelope
    purge, run on heal, so pre-partition traffic cannot leak across the
    blackout. Healing is deterministic: a scheduled event at
    [part_until_ns]. *)
val partition : t -> partition -> unit

val clear_partitions : t -> unit

(** Is the directed link [from_node] → [to_node] currently outside every
    armed blackout window? This is the interconnect's own ground truth —
    kernels must infer it from probe behavior, but the simulator (and the
    careful-reference layer, whose remote reads ride the same wires) may
    ask directly. *)
val reachable : t -> from_node:int -> to_node:int -> bool

(** Send a message; delivery takes one IPI latency plus the SIPS data
    latency (plus any degradation-window effects). Raises {!Too_large}
    over 128 declared bytes and {!Target_failed} if the destination node
    is down. *)
val send :
  t -> from_proc:int -> to_node:int -> kind:kind -> size:int -> message -> unit

(** Blocking receive on a node's request or reply queue. *)
val receive :
  ?timeout:int64 -> t -> node:int -> kind:kind -> envelope option

val pending : t -> node:int -> kind:kind -> int

val send_count : t -> int

(** Messages dropped / duplicated / delayed by degradation windows. *)
val drop_count : t -> int

val dup_count : t -> int

val delay_count : t -> int

(** Stale pre-failure envelopes purged by {!restore_node} or by a
    partition heal. *)
val stale_purged_count : t -> int

(** Messages lost to partition blackout windows. *)
val partition_blocked_count : t -> int
