type t = { mutable waiters : Engine.thread list }

let create () = { waiters = [] }

let wait eng cv m =
  Mutex.unlock eng m;
  Engine.suspend ~site:"condvar.wait" (fun thr ->
      cv.waiters <- cv.waiters @ [ thr ]);
  Mutex.lock eng m

let signal eng cv =
  let rec wake () =
    match cv.waiters with
    | [] -> ()
    | w :: rest ->
      cv.waiters <- rest;
      if not (Engine.try_resume eng w) then wake ()
  in
  wake ()

let broadcast eng cv =
  let ws = cv.waiters in
  cv.waiters <- [];
  List.iter (fun w -> ignore (Engine.try_resume eng w)) ws
