lib/faultinj/campaign.ml: Array Bytes Flash Hive Int64 List Printf Sim String Workloads
