lib/flash/disk.mli: Config Sim
