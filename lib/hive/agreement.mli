(** Distributed agreement on cell failure (Section 4.3).

   A hint alone must not reboot a cell: a faulty cell that mistakenly
   concluded others were corrupt could destroy a large fraction of the
   system. When an alert is broadcast, all cells suspend user-level
   processes and vote on the suspect's liveness; consensus among the
   surviving cells is required before recovery. A cell that broadcasts
   the same alert twice but is voted down both times is itself considered
   corrupt by the other cells.

   Interconnect partitions add a third observable beside "alive" and
   "dead": *unreachable* (a careful-section timeout, as opposed to a bus
   error). Votes carry the tri-state verdict; with
   [Params.agreement_quorum_check] set, confirmation needs zero "alive"
   votes, some evidence, and responses from a strict majority of the
   accuser's live set minus demonstrably-dead hardware. An accuser that
   cannot muster that quorum while peers are unreachable is on the
   minority side of a partition and stands down (panics) instead of
   confirming — the single-recovery-master invariant.

   The paper simulated this protocol with an oracle (the group-membership
   algorithm was not yet implemented); we provide both the real
   broadcast-vote protocol and an oracle mode for reproducing the paper's
   experimental setup. *)

type verdict = V_alive | V_dead | V_unreachable

type Types.payload +=
    P_vote_req of { suspect : Types.cell_id;
      accuser : Types.cell_id;
    }
  | P_vote of { verdict : verdict; }
  | P_dismiss of { accuser : Types.cell_id; }
val vote_op : Rpc.Op.t
val ping_op : Rpc.Op.t
val dismiss_op : Rpc.Op.t
val probe_timeout_ns : int64

(** One agreement round's tallies, and the confirmation decision as a
    pure function of them — the exact rule the live protocol applies,
    exported so property tests can drive it with synthetic electorates.
    [t_hard_dead] counts demonstrably-dead hardware (bus errors, frozen
    clocks): it leaves the quorum base, whereas unreachable silence stays
    in the base and denies the accuser its vote. With [quorum_check]
    false the historical rule applies (silence counts as a death vote) —
    the planted bug behind [--demo-split-brain]. *)
type tally = {
  t_alive : int;
  t_dead : int;
  t_unreachable : int;
  t_hard_dead : int;
  t_live_set : int;
}

val quorum_confirms : quorum_check:bool -> tally -> bool
val oracle_dead : Types.system -> int -> bool
val probe :
  Types.system -> Types.cell -> Types.cell_id -> verdict
val false_alert_count : Types.cell -> Types.cell_id -> int
val bump_false_alerts : Types.cell -> Types.cell_id -> unit
val run :
  Types.system ->
  Types.cell -> suspect:Types.cell_id -> reason:string -> unit
val registered : bool ref
val register_handlers : unit -> unit
