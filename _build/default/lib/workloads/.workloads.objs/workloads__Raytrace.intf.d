lib/workloads/raytrace.mli: Hive Workload
