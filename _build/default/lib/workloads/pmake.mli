(** pmake: parallel compilation of 11 files of GnuChess 3.1, four at a time
   (Table 7.1) — the paper's compute-server workload.

   Each compile job execs the shared compiler binary, searches include
   directories, reads its source, and pipelines through preprocessor /
   compiler / assembler stages with intermediate files in /tmp — whose
   data home is cell 0, making one cell the file server for compiler
   temporaries exactly as in Section 4.2 (the cell serving /tmp showed the
   peak count of remotely-writable pages). Outputs are deterministic
   functions of the inputs so fault-injection runs can detect corruption. *)

type cfg = {
  files : int;
  jobs : int;
  src_bytes : int;
  hdr_bytes : int;
  cc_bytes : int;
  intermediate_bytes : int;
  obj_bytes : int;
  anon_pages : int;
  include_searches : int;
  cpp_ns : int64;
  cc1_ns : int64;
  as_ns : int64;
  link_ns : int64;
}
val default : cfg
val src_path : int -> string
val obj_path : int -> string
val cc_path : string
val hdr_path : string
val lib_path : string
val lib_bytes : int
val inc_path : int -> string
val src_content : int -> bytes
val expected_obj : cfg -> int -> bytes
val expected_binary : cfg -> bytes
val binary_path : string
val setup : Hive.Types.system -> cfg -> unit
val compile_job :
  cfg -> int -> Hive.Types.system -> Hive.Types.process -> unit
val driver : cfg -> Hive.Types.system -> Hive.Types.process -> unit
val run :
  ?cfg:cfg ->
  Hive.Types.system -> Workload.result * Hive.Types.process
val verify :
  ?cfg:cfg ->
  Hive.Types.system -> (string * Workload.verify_outcome) list
