test/test_fs.ml: Alcotest Array Bytes Flash Gen Hashtbl Hive List QCheck QCheck_alcotest Sim Workloads
