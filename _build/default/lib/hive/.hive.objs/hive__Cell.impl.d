lib/hive/cell.ml: Array Clock Clock_hand Flash Hashtbl List Panic Printexc Printf Rpc Share Sim Types
