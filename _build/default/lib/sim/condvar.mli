(** Condition variable for use with {!Mutex} (FIFO wakeup). *)

type t

val create : unit -> t

(** [wait eng cv m] atomically releases [m], blocks until signaled, then
    reacquires [m]. *)
val wait : Engine.t -> t -> Mutex.t -> unit

val signal : Engine.t -> t -> unit

val broadcast : Engine.t -> t -> unit
