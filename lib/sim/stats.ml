(* Streaming statistics: bounded-reservoir summaries, log-bucket latency
   histograms, and named counters.

   Summaries keep exact count/sum/min/max and a fixed-size reservoir of
   samples for percentile estimation, so memory stays bounded however long
   a run gets. The sorted view of the reservoir is cached between [add]s,
   making repeated percentile queries cheap. *)

let reservoir_capacity = 4096

type summary = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  reservoir : float array; (* first [filled] slots are valid *)
  mutable filled : int;
  mutable sorted : float array option; (* cache, invalidated by add *)
  mutable rng : int; (* private LCG state for reservoir replacement *)
  keep_samples : bool;
}

let summary ?(keep_samples = true) () =
  {
    count = 0;
    sum = 0.;
    min_v = infinity;
    max_v = neg_infinity;
    reservoir = (if keep_samples then Array.make reservoir_capacity 0. else [||]);
    filled = 0;
    sorted = None;
    rng = 0x9e3779b9;
    keep_samples;
  }

(* Deterministic LCG (Numerical Recipes constants), masked to 62 bits. *)
let next_rng s =
  s.rng <- ((s.rng * 1664525) + 1013904223) land 0x3FFFFFFFFFFFFFF;
  s.rng

let add s x =
  s.count <- s.count + 1;
  s.sum <- s.sum +. x;
  if x < s.min_v then s.min_v <- x;
  if x > s.max_v then s.max_v <- x;
  if s.keep_samples then begin
    if s.filled < reservoir_capacity then begin
      s.reservoir.(s.filled) <- x;
      s.filled <- s.filled + 1;
      s.sorted <- None
    end
    else begin
      (* Vitter's algorithm R: keep each of the [count] samples with
         equal probability capacity/count. *)
      let j = next_rng s mod s.count in
      if j < reservoir_capacity then begin
        s.reservoir.(j) <- x;
        s.sorted <- None
      end
    end
  end

let add_ns s ns = add s (Int64.to_float ns)

let count s = s.count

let sum s = s.sum

let mean s = if s.count = 0 then 0. else s.sum /. float_of_int s.count

let min_value s = if s.count = 0 then 0. else s.min_v

let max_value s = if s.count = 0 then 0. else s.max_v

let sorted_samples s =
  match s.sorted with
  | Some arr -> arr
  | None ->
    let arr = Array.sub s.reservoir 0 s.filled in
    Array.sort compare arr;
    s.sorted <- Some arr;
    arr

let percentile s p =
  if not s.keep_samples then invalid_arg "Stats.percentile: samples not kept";
  let arr = sorted_samples s in
  let n = Array.length arr in
  if n = 0 then 0.
  else
    let idx = int_of_float ((p /. 100. *. float_of_int (n - 1)) +. 0.5) in
    arr.(max 0 (min (n - 1) idx))

(* ---------- Log-bucket latency histograms ----------

   Fixed power-of-two buckets (bucket i covers [2^i, 2^(i+1)) ns) give a
   compact, mergeable shape for export, while the embedded summary's
   reservoir provides accurate p50/p95/p99. *)

let hist_buckets_n = 64

type histogram = { hsummary : summary; buckets : int array }

let histogram () =
  { hsummary = summary (); buckets = Array.make hist_buckets_n 0 }

let bucket_of_ns ns =
  if Int64.compare ns 1L <= 0 then 0
  else
    let rec log2 acc v = if Int64.compare v 1L <= 0 then acc else log2 (acc + 1) (Int64.shift_right_logical v 1) in
    min (hist_buckets_n - 1) (log2 0 ns)

let hist_add h ns =
  add_ns h.hsummary ns;
  let i = bucket_of_ns ns in
  h.buckets.(i) <- h.buckets.(i) + 1

let hist_count h = h.hsummary.count

let hist_mean h = mean h.hsummary

let hist_min h = min_value h.hsummary

let hist_max h = max_value h.hsummary

let hist_percentile h p = percentile h.hsummary p

(* Non-empty buckets as (lo_ns, hi_ns, count), ascending. *)
let hist_nonempty h =
  let out = ref [] in
  for i = hist_buckets_n - 1 downto 0 do
    if h.buckets.(i) > 0 then
      let lo = if i = 0 then 0L else Int64.shift_left 1L i in
      let hi = Int64.shift_left 1L (i + 1) in
      out := (lo, hi, h.buckets.(i)) :: !out
  done;
  !out

type counter = { mutable n : int }

let counter () = { n = 0 }

let incr c = c.n <- c.n + 1

let incr_by c k = c.n <- c.n + k

let get c = c.n

let reset c = c.n <- 0

(* A set of named counters, used by cells and benches for event accounting. *)
type registry = (string, counter) Hashtbl.t

let registry () : registry = Hashtbl.create 32

let find (r : registry) name =
  match Hashtbl.find_opt r name with
  | Some c -> c
  | None ->
    let c = counter () in
    Hashtbl.replace r name c;
    c

let bump ?(by = 1) r name = incr_by (find r name) by

let value r name = match Hashtbl.find_opt r name with Some c -> c.n | None -> 0

let to_list (r : registry) =
  Hashtbl.fold (fun k c acc -> (k, c.n) :: acc) r []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
