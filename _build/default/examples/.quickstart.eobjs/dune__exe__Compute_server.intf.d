examples/compute_server.mli:
