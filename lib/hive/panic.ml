(* Cell panic: a kernel that detects internal corruption shuts itself down.

   The panic routine uses the FLASH memory-cutoff feature to stop
   servicing remote accesses to its nodes' memory, preventing the spread
   of potentially corrupt data (Table 8.1); all kernel and user threads of
   the cell are killed. Peers notice the silence through clock monitoring
   or bus errors and run distributed agreement. *)

let panic (sys : Types.system) (c : Types.cell) reason =
  if c.Types.cstatus <> Types.Cell_down then begin
    c.Types.cstatus <- Types.Cell_down;
    Types.sys_bump sys "cell.panics";
    Sim.Trace.info sys.Types.eng "cell %d PANIC: %s" c.Types.cell_id reason;
    (* Cut off remote access to our memory before anything else. *)
    List.iter
      (fun node -> Flash.Machine.cutoff_node sys.Types.machine node)
      c.Types.cell_nodes;
    (* Kill every thread belonging to this kernel. *)
    let ts = c.Types.kernel_threads in
    c.Types.kernel_threads <- [];
    List.iter (fun t -> Sim.Engine.kill sys.Types.eng t) ts;
    (* And every user process thread running here. *)
    List.iter
      (fun (p : Types.process) ->
        match p.Types.thread with
        | Some t when p.Types.pstate <> Types.Proc_zombie ->
          p.Types.killed_by_failure <- true;
          Sim.Engine.kill sys.Types.eng t
        | _ -> ())
      c.Types.processes;
    (* Tell the failure machinery: if a recovery round is in flight and
       this cell was a participant, the round must restart rather than
       deadlock on a barrier party that will never arrive. *)
    match sys.Types.on_cell_death with
    | Some f -> f c.Types.cell_id
    | None -> ()
  end

exception Kernel_corruption of string

(* Invoked when a kernel thread dereferences bad data outside a careful
   section: on the real machine this is a bus error in kernel mode, which
   panics the cell rather than being survivable. *)
let kernel_bad_reference (sys : Types.system) (c : Types.cell) what =
  panic sys c ("kernel bad reference: " ^ what);
  raise (Kernel_corruption what)
