(* RPC subsystem tests: dispatch, queued service, error paths, costs. *)

(* Op descriptors are declared once per process (module initialization). *)
let echo_op = Hive.Rpc.Op.declare "test.echo"

let queued_echo_op = Hive.Rpc.Op.declare "test.queued_echo"

let fail_op = Hive.Rpc.Op.declare "test.fail"

let raise_op = Hive.Rpc.Op.declare "test.raise"

let slow_op = Hive.Rpc.Op.declare "test.slow"

let nonexistent_op = Hive.Rpc.Op.declare "test.nonexistent"

let registered = ref false

let register () =
  if not !registered then begin
    registered := true;
    Hive.Rpc.register echo_op (fun _sys _cell ~src:_ arg ->
        Hive.Types.Immediate (Ok arg));
    Hive.Rpc.register queued_echo_op (fun _sys _cell ~src:_ arg ->
        Hive.Types.Queued (fun () -> Ok arg));
    Hive.Rpc.register fail_op (fun _sys _cell ~src:_ _arg ->
        Hive.Types.Immediate (Error Hive.Types.EAGAIN));
    Hive.Rpc.register raise_op (fun _sys _cell ~src:_ _arg ->
        raise (Hive.Types.Syscall_error Hive.Types.EFAULT));
    Hive.Rpc.register slow_op (fun sys _cell ~src:_ _arg ->
        Hive.Types.Queued
          (fun () ->
            ignore sys;
            Sim.Engine.delay 50_000_000L;
            Ok Hive.Types.P_unit))
  end

let with_sys f =
  register ();
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = 2; mem_pages_per_node = 256 }
  in
  let sys = Hive.System.boot ~mcfg ~ncells:2 ~wax:false eng in
  f eng sys

(* Returns (outcome, simulated call duration). *)
let call_from_thread eng sys ~op ?timeout_ns ?arg_bytes arg =
  let out = ref (Error Hive.Types.EFAULT) in
  let dur = ref 0L in
  ignore
    (Sim.Engine.spawn eng ~name:"caller" (fun () ->
         let t0 = Sim.Engine.time () in
         out :=
           Hive.Rpc.call sys ~from:sys.Hive.Types.cells.(0) ~target:1 ~op
             ?timeout_ns ?arg_bytes arg;
         dur := Int64.sub (Sim.Engine.time ()) t0));
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 30_000_000_000L) eng;
  (!out, !dur)

let test_echo () =
  with_sys (fun eng sys ->
      match call_from_thread eng sys ~op:echo_op (Hive.Types.P_int 42) with
      | Ok (Hive.Types.P_int 42), _ -> ()
      | _ -> Alcotest.fail "echo failed")

let test_queued_echo () =
  with_sys (fun eng sys ->
      match
        call_from_thread eng sys ~op:queued_echo_op (Hive.Types.P_int 7)
      with
      | Ok (Hive.Types.P_int 7), _ -> ()
      | _ -> Alcotest.fail "queued echo failed")

let test_error_propagates () =
  with_sys (fun eng sys ->
      match call_from_thread eng sys ~op:fail_op Hive.Types.P_unit with
      | Error Hive.Types.EAGAIN, _ -> ()
      | _ -> Alcotest.fail "expected EAGAIN")

let test_handler_exception_becomes_error () =
  with_sys (fun eng sys ->
      match call_from_thread eng sys ~op:raise_op Hive.Types.P_unit with
      | Error Hive.Types.EFAULT, _ -> ()
      | _ -> Alcotest.fail "expected EFAULT")

let test_unknown_op () =
  with_sys (fun eng sys ->
      match call_from_thread eng sys ~op:nonexistent_op Hive.Types.P_unit with
      | Error Hive.Types.EFAULT, _ -> ()
      | _ -> Alcotest.fail "expected EFAULT for unknown op")

let test_timeout_on_slow_op () =
  with_sys (fun eng sys ->
      (* 50 ms handler with a 5 ms timeout: the caller must give up. *)
      match
        call_from_thread eng sys ~op:slow_op ~timeout_ns:5_000_000L
          Hive.Types.P_unit
      with
      | Error Hive.Types.EHOSTDOWN, _ -> ()
      | _ -> Alcotest.fail "expected timeout")

let test_known_dead_target_fast_fail () =
  with_sys (fun eng sys ->
      let c0 = sys.Hive.Types.cells.(0) in
      c0.Hive.Types.live_set <- [ 0 ];
      match call_from_thread eng sys ~op:echo_op Hive.Types.P_unit with
      | Error Hive.Types.EHOSTDOWN, dur ->
        (* No timeout wait: the live-set check short-circuits. *)
        Alcotest.(check bool) "instant failure" true
          (Int64.compare dur 1_000_000L < 0)
      | _ -> Alcotest.fail "expected EHOSTDOWN")

let test_large_args_cost_more () =
  with_sys (fun eng sys ->
      let timed arg_bytes =
        match
          call_from_thread eng sys ~op:echo_op ~arg_bytes
            Hive.Types.P_unit
        with
        | Ok _, dur -> dur
        | Error _, _ -> Alcotest.fail "call failed"
      in
      let small = timed 32 in
      let big = timed 4096 in
      Alcotest.(check bool) "copy through shared memory costs more" true
        (Int64.compare big small > 0))

let test_concurrent_calls () =
  with_sys (fun eng sys ->
      let done_count = ref 0 in
      for _ = 1 to 20 do
        ignore
          (Sim.Engine.spawn eng (fun () ->
               match
                 Hive.Rpc.call sys ~from:sys.Hive.Types.cells.(0) ~target:1
                   ~op:queued_echo_op Hive.Types.P_unit
               with
               | Ok _ -> incr done_count
               | Error _ -> ()))
      done;
      Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 30_000_000_000L) eng;
      Alcotest.(check int) "all 20 concurrent queued calls served" 20
        !done_count)

let test_duplicate_registration_rejected () =
  register ();
  Alcotest.check_raises "duplicate op"
    (Invalid_argument "Rpc.register: duplicate test.echo") (fun () ->
      Hive.Rpc.register echo_op (fun _ _ ~src:_ _ ->
          Hive.Types.Immediate (Ok Hive.Types.P_unit)))

let suite =
  [
    Alcotest.test_case "echo" `Quick test_echo;
    Alcotest.test_case "queued echo" `Quick test_queued_echo;
    Alcotest.test_case "handler error propagates" `Quick test_error_propagates;
    Alcotest.test_case "handler exception becomes error reply" `Quick
      test_handler_exception_becomes_error;
    Alcotest.test_case "unknown op" `Quick test_unknown_op;
    Alcotest.test_case "timeout on slow op" `Quick test_timeout_on_slow_op;
    Alcotest.test_case "known-dead target fails fast" `Quick
      test_known_dead_target_fast_fail;
    Alcotest.test_case "large args cost more" `Quick test_large_args_cost_more;
    Alcotest.test_case "20 concurrent queued calls" `Quick
      test_concurrent_calls;
    Alcotest.test_case "duplicate registration rejected" `Quick
      test_duplicate_registration_rejected;
  ]
