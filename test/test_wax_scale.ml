(* Wax at the paper's full envelope: 32-64 cells.

   Wax is only ever a hinting layer — the kernels validate everything it
   deposits against local state, so these tests drive the validation
   contract at scale: malformed hints (dead, duplicate, out-of-range
   cells; oversized or pressureless swap wants) are rejected and counted,
   the coordinator's death forks a fresh incarnation spanning exactly the
   survivors, and a pressured cell's allocations migrate toward the cells
   Wax observed to have free memory. *)

let counter (c : Hive.Types.cell) name =
  Sim.Stats.value c.Hive.Types.counters name

let boot_large ~ncells ~nodes ?(wax = true) () =
  let eng = Sim.Engine.create () in
  let mcfg =
    { (Flash.Config.with_nodes Flash.Config.default nodes) with
      Flash.Config.mem_pages_per_node = 256 }
  in
  let params =
    { Hive.Params.default with Hive.Params.auto_reintegrate = false }
  in
  (eng, Hive.System.boot ~mcfg ~params ~ncells ~wax eng)

(* Every malformed hint shape is refused, bumps the counter, and leaves
   the last accepted preference in place — at 32 cells, with a genuinely
   dead cell in the live set's past. *)
let test_hint_validation_32_cells () =
  let eng, sys = boot_large ~ncells:32 ~nodes:64 ~wax:false () in
  Sim.Engine.run ~until:100_000_000L eng;
  (* Fail-stop the last cell and let recovery excise it, so "dead cell"
     means dead-per-live-set, not just out-of-range. *)
  Hive.System.inject_node_failure sys
    (List.hd sys.Hive.Types.cells.(31).Hive.Types.cell_nodes);
  let excised =
    Hive.System.run_until sys ~deadline:10_000_000_000L (fun () ->
        (not sys.Hive.Types.recovery_in_progress)
        && not
             (List.mem 31 sys.Hive.Types.cells.(5).Hive.Types.live_set))
  in
  Alcotest.(check bool) "recovery excised the dead cell" true excised;
  let c = sys.Hive.Types.cells.(5) in
  let r0 = counter c "wax.rejected_hints" in
  Alcotest.(check bool) "valid hint accepted" true
    (Hive.Wax.sanity_check_hint c [ 0; 1; 2; 3 ]);
  Alcotest.(check (list int)) "preference installed (self filtered)"
    [ 0; 1; 2; 3 ] c.Hive.Types.alloc_preference;
  Alcotest.(check bool) "dead cell rejected" false
    (Hive.Wax.sanity_check_hint c [ 0; 31 ]);
  Alcotest.(check bool) "duplicate rejected" false
    (Hive.Wax.sanity_check_hint c [ 1; 1 ]);
  Alcotest.(check bool) "out-of-range rejected" false
    (Hive.Wax.sanity_check_hint c [ 0; 99 ]);
  Alcotest.(check bool) "negative rejected" false
    (Hive.Wax.sanity_check_hint c [ -1 ]);
  Alcotest.(check bool) "clock hint: dead cell rejected" false
    (Hive.Wax.sanity_check_clock_hint c [ 31 ]);
  Alcotest.(check bool) "clock hint: duplicate rejected" false
    (Hive.Wax.sanity_check_clock_hint c [ 2; 2 ]);
  Alcotest.(check (list int)) "rejections never clobber the preference"
    [ 0; 1; 2; 3 ] c.Hive.Types.alloc_preference;
  Alcotest.(check int) "every rejection counted" (r0 + 6)
    (counter c "wax.rejected_hints");
  (* Swap hints are validated against *local* pressure: a fresh cell has
     plenty of free frames, so any deposited want is refused — a corrupt
     coordinator cannot force needless paging. *)
  let r1 = counter c "wax.rejected_hints" in
  c.Hive.Types.swap_hint <- 4;
  Hive.Wax.act_on_swap_hint sys c;
  Alcotest.(check int) "pressureless swap want refused" (r1 + 1)
    (counter c "wax.rejected_hints");
  Alcotest.(check int) "hint slot cleared either way" 0
    c.Hive.Types.swap_hint;
  (* An absurd want is bounds-rejected before pressure is even consulted. *)
  c.Hive.Types.swap_hint <- max_int;
  Hive.Wax.act_on_swap_hint sys c;
  Alcotest.(check int) "oversized swap want refused" (r1 + 2)
    (counter c "wax.rejected_hints");
  Alcotest.(check int) "no swap ever ran" 0
    (counter c "wax.swap_hints_acted")

(* Killing the coordinator cell of a 64-cell span forks a fresh
   incarnation covering exactly the 63 survivors, and the re-elected
   coordinator's hints flow again without ever naming the dead cell. *)
let test_coordinator_failover_64_cells () =
  let eng, sys = boot_large ~ncells:64 ~nodes:128 () in
  Sim.Engine.run ~until:500_000_000L eng;
  Alcotest.(check int) "one incarnation up" 1
    sys.Hive.Types.wax_incarnation;
  Hive.System.inject_node_failure sys
    (List.hd sys.Hive.Types.cells.(0).Hive.Types.cell_nodes);
  let restarted =
    Hive.System.run_until sys ~deadline:10_000_000_000L (fun () ->
        sys.Hive.Types.wax_incarnation >= 2
        && not sys.Hive.Types.recovery_in_progress)
  in
  Alcotest.(check bool) "fresh incarnation after coordinator death" true
    restarted;
  Alcotest.(check int) "span covers exactly the survivors" 63
    (List.length sys.Hive.Types.wax_threads);
  List.iter
    (fun (t : Sim.Engine.thread) ->
      Alcotest.(check bool)
        (Printf.sprintf "thread %S is incarnation 2" t.Sim.Engine.name)
        true
        (String.length t.Sim.Engine.name > 4
        && String.sub t.Sim.Engine.name 0 4 = "wax2"))
    sys.Hive.Types.wax_threads;
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 1_000_000_000L) eng;
  Array.iter
    (fun (c : Hive.Types.cell) ->
      if Hive.Types.cell_alive c then begin
        Alcotest.(check bool)
          (Printf.sprintf "cell %d got post-failover hints" c.Hive.Types.cell_id)
          true
          (c.Hive.Types.alloc_preference <> []);
        Alcotest.(check bool)
          (Printf.sprintf "cell %d hints exclude the dead coordinator"
             c.Hive.Types.cell_id)
          false
          (List.mem 0 c.Hive.Types.alloc_preference)
      end)
    sys.Hive.Types.cells

(* A cell driven out of free memory allocates its next frame from one of
   the cells Wax's published-stats view said had memory to spare. *)
let test_pressure_migrates_allocation_32_cells () =
  let eng, sys = boot_large ~ncells:32 ~nodes:64 () in
  Sim.Engine.run ~until:1_000_000_000L eng;
  Array.iter
    (fun (c : Hive.Types.cell) ->
      Alcotest.(check bool)
        (Printf.sprintf "cell %d has a preference" c.Hive.Types.cell_id)
        true
        (c.Hive.Types.alloc_preference <> []);
      Alcotest.(check bool)
        (Printf.sprintf "cell %d never prefers itself" c.Hive.Types.cell_id)
        false
        (List.mem c.Hive.Types.cell_id c.Hive.Types.alloc_preference))
    sys.Hive.Types.cells;
  let c0 = sys.Hive.Types.cells.(0) in
  let borrowed = ref None in
  let pref_at_alloc = ref [] in
  let finished = ref false in
  ignore
    (Sim.Engine.spawn eng ~name:"drain" (fun () ->
         (* Exhaust the local free list without touching remote cells. *)
         while Hive.Page_alloc.free_count c0 > 0 do
           ignore (Hive.Page_alloc.alloc_frame ~kernel_only:true sys c0)
         done;
         (* The next general allocation must go intercell, steered by
            the preference standing at this moment (the loan itself
            shifts the next published top-k, so snapshot now). *)
         pref_at_alloc := c0.Hive.Types.alloc_preference;
         let pf = Hive.Page_alloc.alloc_frame sys c0 in
         borrowed := pf.Hive.Types.borrowed_from;
         finished := true));
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 2_000_000_000L) eng;
  Alcotest.(check bool) "drain thread finished" true !finished;
  Alcotest.(check bool) "allocation borrowed intercell" true
    (counter c0 "page_alloc.borrows" > 0);
  match !borrowed with
  | None -> Alcotest.fail "frame not marked borrowed"
  | Some home ->
    Alcotest.(check bool)
      (Printf.sprintf "borrowed from a Wax-preferred cell (got %d, pref=[%s])"
         home
         (String.concat ";" (List.map string_of_int !pref_at_alloc)))
      true
      (List.mem home !pref_at_alloc)

let suite =
  [
    Alcotest.test_case "hint validation rejects malformed hints at 32 cells"
      `Quick test_hint_validation_32_cells;
    Alcotest.test_case "coordinator failover re-spans 63 survivors at 64 cells"
      `Quick test_coordinator_failover_64_cells;
    Alcotest.test_case "pressure migrates allocation per published stats"
      `Quick test_pressure_migrates_allocation_32_cells;
  ]
