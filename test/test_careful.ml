(* Dedicated tests for the careful reference protocol (Section 4.1): every
   defense listed in the paper, exercised directly. *)

let with_sys f =
  let eng = Sim.Engine.create () in
  let mcfg =
    { Flash.Config.small with Flash.Config.nodes = 2; mem_pages_per_node = 512 }
  in
  let sys = Hive.System.boot ~mcfg ~ncells:2 ~wax:false eng in
  f eng sys

let in_thread sys body =
  let eng = sys.Hive.Types.eng in
  let thr = Sim.Engine.spawn eng ~name:"t" body in
  Sim.Engine.run ~until:(Int64.add (Sim.Engine.now eng) 60_000_000_000L) eng;
  Alcotest.(check bool) "thread done" true thr.Sim.Engine.dead

let reader sys = sys.Hive.Types.cells.(0)

let test_valid_read () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          let c1 = sys.Hive.Types.cells.(1) in
          match
            Hive.Careful_ref.protect sys (reader sys) ~target:1 (fun ctx ->
                Hive.Careful_ref.read_i64 ctx c1.Hive.Types.clock_addr)
          with
          | Ok _ -> ()
          | Error _ -> Alcotest.fail "valid careful read must succeed"))

let test_misaligned_pointer_defended () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          let c1 = sys.Hive.Types.cells.(1) in
          match
            Hive.Careful_ref.protect sys (reader sys) ~target:1 (fun ctx ->
                Hive.Careful_ref.read_i64 ctx (c1.Hive.Types.clock_addr + 3))
          with
          | Error (Hive.Careful_ref.Bad_pointer _) -> ()
          | _ -> Alcotest.fail "misaligned address must be defended"))

let test_wrong_cell_pointer_defended () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          (* Address in cell 0's range while expecting cell 1. *)
          let c0 = sys.Hive.Types.cells.(0) in
          match
            Hive.Careful_ref.protect sys (reader sys) ~target:1 (fun ctx ->
                Hive.Careful_ref.read_i64 ctx c0.Hive.Types.clock_addr)
          with
          | Error (Hive.Careful_ref.Bad_pointer _) -> ()
          | _ -> Alcotest.fail "out-of-cell address must be defended"))

let test_invalid_address_defended () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          match
            Hive.Careful_ref.protect sys (reader sys) ~target:1 (fun ctx ->
                Hive.Careful_ref.read_i64 ctx 0x7FFFFFF8)
          with
          | Error (Hive.Careful_ref.Bad_pointer _) -> ()
          | _ -> Alcotest.fail "wild address must be defended"))

let test_bus_error_defended () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          let c1 = sys.Hive.Types.cells.(1) in
          Flash.Machine.fail_node sys.Hive.Types.machine 1;
          match
            Hive.Careful_ref.protect sys (reader sys) ~target:1 (fun ctx ->
                Hive.Careful_ref.read_i64 ctx c1.Hive.Types.clock_addr)
          with
          | Error (Hive.Careful_ref.Bus_fault _) -> ()
          | _ -> Alcotest.fail "bus error must be defended, not panic"))

let test_bad_tag_defended () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          let c1 = sys.Hive.Types.cells.(1) in
          let addr =
            Hive.Kmem.alloc sys c1 ~tag:0xDEADL ~size:16
          in
          match
            Hive.Careful_ref.protect sys (reader sys) ~target:1 (fun ctx ->
                Hive.Careful_ref.check_tag ctx ~addr ~expected:0xBEEFL)
          with
          | Error (Hive.Careful_ref.Bad_tag { expected = 0xBEEFL; found = 0xDEADL; _ })
            -> ()
          | _ -> Alcotest.fail "tag mismatch must be defended"))

let test_value_check_defended () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          match
            Hive.Careful_ref.protect sys (reader sys) ~target:1 (fun _ctx ->
                Hive.Careful_ref.fail_value "impossible state")
          with
          | Error (Hive.Careful_ref.Bad_value _) -> ()
          | _ -> Alcotest.fail "value check must be defended"))

let test_hop_backstop () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          let c1 = sys.Hive.Types.cells.(1) in
          match
            Hive.Careful_ref.protect sys (reader sys) ~target:1 (fun ctx ->
                (* A runaway traversal: read far more than any legitimate
                   structure contains. *)
                for _ = 1 to 300_000 do
                  ignore (Hive.Careful_ref.read_i64 ctx c1.Hive.Types.clock_addr)
                done)
          with
          | Error Hive.Careful_ref.Loop_detected -> ()
          | _ -> Alcotest.fail "runaway loop must hit the hop backstop"))

let test_reader_survives_and_counts () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          let c0 = reader sys in
          Flash.Machine.fail_node sys.Hive.Types.machine 1;
          for _ = 1 to 5 do
            ignore
              (Hive.Careful_ref.protect sys c0 ~target:1 (fun ctx ->
                   Hive.Careful_ref.read_i64 ctx
                     sys.Hive.Types.cells.(1).Hive.Types.clock_addr))
          done;
          Alcotest.(check bool) "reader cell alive after 5 defenses" true
            (Hive.Types.cell_alive c0);
          Alcotest.(check int) "defenses counted" 5
            (Sim.Stats.value c0.Hive.Types.counters "careful_ref.defended")))

let test_latency_close_to_paper () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          let c1 = sys.Hive.Types.cells.(1) in
          let t0 = Sim.Engine.time () in
          let n = 100 in
          for _ = 1 to n do
            ignore
              (Hive.Careful_ref.protect sys (reader sys) ~target:1 (fun ctx ->
                   Hive.Careful_ref.read_i64 ctx c1.Hive.Types.clock_addr))
          done;
          let avg_ns =
            Int64.to_float (Int64.sub (Sim.Engine.time ()) t0)
            /. float_of_int n
          in
          (* Paper: 1.16 us average including the 0.7 us cache miss. *)
          Alcotest.(check bool)
            (Printf.sprintf "avg %.0f ns within [1000, 1500]" avg_ns)
            true
            (avg_ns > 1000. && avg_ns < 1500.)))

(* Property: whatever corrupt pointer, bounds or tag value a remote cell
   serves up, the careful protocol converts it into a *typed* failure —
   an [Error reason] from [protect] — never an uncaught exception and
   never silent acceptance of a corrupt value. 1,000 seeded-random cases
   across the three corruption families. *)
let test_random_corrupt_values_always_typed_failure () =
  with_sys (fun _eng sys ->
      in_thread sys (fun () ->
          let rng = Sim.Prng.create 0xC0FFEE in
          let c1 = sys.Hive.Types.cells.(1) in
          let mem_end =
            sys.Hive.Types.mcfg.Flash.Config.nodes
            * Flash.Config.mem_bytes_per_node sys.Hive.Types.mcfg
          in
          let rejected = ref 0 in
          for i = 0 to 999 do
            let result =
              Hive.Careful_ref.protect sys (reader sys) ~target:1 (fun ctx ->
                  match i mod 3 with
                  | 0 ->
                    (* Misaligned pointer inside the right cell. *)
                    let addr =
                      c1.Hive.Types.clock_addr
                      + (8 * Sim.Prng.int rng 256)
                      + 1 + Sim.Prng.int rng 7
                    in
                    Hive.Careful_ref.read_i64 ctx addr
                  | 1 ->
                    (* Aligned pointer outside the expected cell: either
                       in cell 0's memory or off the end of RAM. *)
                    let addr =
                      if Sim.Prng.bool rng then 8 * Sim.Prng.int rng 512
                      else mem_end + (8 * Sim.Prng.int rng 100_000)
                    in
                    Hive.Careful_ref.read_i64 ctx addr
                  | _ ->
                    (* Valid pointer, corrupt type tag. The wax slot
                       holds 0 with wax disabled, so any nonzero expected
                       tag must be rejected. *)
                    let addr = c1.Hive.Types.wax_slot in
                    let expected =
                      Int64.of_int (1 + Sim.Prng.int rng 0xFFFFFF)
                    in
                    Hive.Careful_ref.check_tag ctx ~addr ~expected;
                    0L)
            in
            match result with
            | Error _ -> incr rejected
            | Ok v ->
              Alcotest.failf "case %d: corrupt value silently accepted (%Ld)"
                i v
          done;
          Alcotest.(check int) "all 1000 corrupt values rejected" 1000
            !rejected))

let suite =
  [
    Alcotest.test_case "valid remote read succeeds" `Quick test_valid_read;
    Alcotest.test_case "misaligned pointer defended" `Quick
      test_misaligned_pointer_defended;
    Alcotest.test_case "pointer outside expected cell defended" `Quick
      test_wrong_cell_pointer_defended;
    Alcotest.test_case "invalid physical address defended" `Quick
      test_invalid_address_defended;
    Alcotest.test_case "bus error defended (no panic)" `Quick
      test_bus_error_defended;
    Alcotest.test_case "structure tag mismatch defended" `Quick
      test_bad_tag_defended;
    Alcotest.test_case "sanity-check failure defended" `Quick
      test_value_check_defended;
    Alcotest.test_case "runaway traversal hits hop backstop" `Quick
      test_hop_backstop;
    Alcotest.test_case "reader survives repeated defenses" `Quick
      test_reader_survives_and_counts;
    Alcotest.test_case "latency near the paper's 1.16 us" `Quick
      test_latency_close_to_paper;
    Alcotest.test_case "1000 random corrupt values -> typed failures" `Quick
      test_random_corrupt_values_always_typed_failure;
  ]
