lib/sim/stats.mli:
